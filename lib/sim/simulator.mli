(** Crude discrete-event Monte-Carlo simulation of the full SD fault tree
    semantics.

    Simulates the product process of Section III-C directly — static events
    sampled at time zero, dynamic events racing exponential transitions,
    trigger updates applied instantaneously after every jump — without ever
    building the product state space (the trial machinery lives in
    {!Sim_world}). Used as a statistical baseline to validate the analytic
    pipeline on models with failure probabilities large enough to observe;
    for genuinely rare top events use the importance-sampling engine
    {!Rare_event}, which shares the same semantics. *)

type stats = {
  trials : int;
  failures : int;
  estimate : float;  (** failure fraction *)
  std_error : float;  (** binomial standard error *)
}

val unreliability :
  ?seed:int -> Sdft.t -> horizon:float -> trials:int -> stats
(** [unreliability sd ~horizon ~trials] — probability that the top gate
    fails within the horizon, estimated over independent trials. The
    default seed is 42; results are deterministic per seed. *)

val failure_time :
  ?seed:int -> Sdft.t -> horizon:float -> trials:int -> float option
(** Mean time to first top-gate failure among failing trials, [None] when
    no trial failed. *)

val wilson_interval : ?z:float -> stats -> float * float
(** Wilson score interval at critical value [z] (default 1.96, i.e. 95%).
    Remains informative in the degenerate cases: with 0 observed failures
    the upper bound is [z^2 / (n + z^2)] rather than 0, and symmetrically
    with all trials failing. *)

val confidence_95 : stats -> float * float
(** [wilson_interval] at 95%. *)

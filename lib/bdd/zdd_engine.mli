(** ZDD-backed cutset engine: modular BDD compilation, Rauzy
    minimal-solution extraction, and weighted-count quantification.

    A peer of MOCUS for static (or translated) trees. Per independent
    module — bottom-up, nested module gates appearing as pseudo-variables
    in their parent's diagram — the engine compiles the structure function
    to a BDD, extracts the minimal-cutset family as a ZDD, and folds the
    family's total rare-event mass, saturating cutset count, and
    enumeration bounds out of the shared diagram without materializing the
    (possibly astronomic) cutset list. Only the cutsets above the cutoff
    (and within the order bound) are composed across modules and emitted;
    the mass of everything else is [total_mass - emitted_mass], {e exact}
    rather than an upper bound — which is what lets the downstream
    certified interval carry zero unaccounted pruned mass.

    Resource governance: the caller's guard is threaded through BDD
    construction, the ZDD subsumption passes (see {!Zdd.manager}), the
    folds, and the enumeration walk; a tripped limit raises
    {!Sdft_util.Guard.Limit_hit} out of {!run}. Each module's ZDD operation
    caches are dropped ({!Zdd.clear_caches}) as soon as the module is
    quantified. *)

type module_stats = {
  ms_gate : int;  (** the module's root gate *)
  ms_basics : int;  (** distinct basic events in the cut subtree *)
  ms_gates : int;  (** gates in the cut subtree *)
  ms_and : int;
  ms_or : int;
  ms_atleast : int;
  ms_inner_modules : int;
      (** nested module gates, which the engine treats as single
          pseudo-variables — [ms_basics + ms_inner_modules] is the
          variable count of the BDD compiled for this module *)
}

val module_stats : Fault_tree.t -> module_stats list
(** Structural statistics of every module's {e cut} subtree (the DFS stops
    at nested module gates), one entry per gate of {!Modules.find} — the
    inputs of the engine auto-selection heuristic. *)

type result = {
  cutsets : Sdft_util.Int_set.t list;
      (** minimal cutsets with probability product [>= cutoff] and
          cardinality [<= max_order], sorted by {!Sdft_util.Int_set.compare} *)
  total_mass : float;
      (** rare-event mass of {e all} minimal cutsets (the ZDD weighted
          count) — never enumerated *)
  emitted_mass : float;  (** rare-event mass of [cutsets] *)
  residual_mass : float;
      (** [total_mass - emitted_mass]: the exact mass of the cutsets
          dropped by the cutoff and order bounds (clamped at 0 against
          float noise) *)
  n_minimal : int;
      (** saturating count of all minimal cutsets ([max_int] = "at least") *)
  n_minimal_saturated : bool;
  n_modules : int;
  max_zdd_nodes : int;  (** largest per-module minimal-solutions ZDD *)
}

val run :
  ?cutoff:float ->
  ?max_order:int ->
  ?guard:Sdft_util.Guard.t ->
  ?obs:Sdft_util.Obs.t ->
  Fault_tree.t ->
  result
(** [run tree] quantifies the tree's minimal-cutset family with its own
    basic-event probabilities. [cutoff] defaults to [0.0] (emit every
    minimal cutset); [max_order] defaults to unbounded. [obs] (default
    {!Sdft_util.Obs.default}) receives the [zdd.run] trace span, the
    [zdd.runs] / [zdd.modules] / [zdd.cutsets_emitted] tallies and the
    [zdd.peak_nodes] high-water gauge; its [zdd.module] failpoint site
    fires before each module compilation.

    @raise Sdft_util.Guard.Limit_hit when the guard trips — unlike MOCUS
    there is no sound partial result to salvage; the caller degrades. *)

(** Reduced ordered binary decision diagrams (hash-consed).

    Used as the exact engine for static fault trees: compilation of the gate
    structure yields the structure function, whose exact probability follows
    by Shannon expansion, and whose minimal cutsets follow by the Rauzy
    minimal-solutions construction (see {!Minsol}). This is the
    state-of-the-art alternative to MOCUS that the paper cites for cutset
    generation; we use it as a cross-checking baseline. *)

type manager

type node = private int
(** Node handle, valid within its manager. *)

val manager :
  ?var_order:int array -> ?guard:Sdft_util.Guard.t -> n_vars:int -> unit ->
  manager
(** [var_order] lists the variables from the root level downwards; it must
    be a permutation of [0 .. n_vars-1] (default: identity). [guard]
    (default {!Sdft_util.Guard.none}) is checkpointed at every node
    construction, so any apply/compile through this manager raises
    {!Sdft_util.Guard.Limit_hit} once a resource limit trips. *)

val n_vars : manager -> int

val guard : manager -> Sdft_util.Guard.t
(** The guard the manager was created with — lets derived structures (the
    minimal-solutions ZDD) inherit the same resource governance. *)

val zero : node

val one : node

val var : manager -> int -> node
(** The function "variable [v] is true". *)

val level_of_var : manager -> int -> int

val apply_and : manager -> node -> node -> node

val apply_or : manager -> node -> node -> node

val apply_not : manager -> node -> node
(** Negation — not used by coherent analysis but needed for tests and for
    success-branch handling in event trees. *)

val ite : manager -> node -> node -> node -> node

val restrict : manager -> node -> int -> bool -> node
(** Cofactor with respect to a variable. *)

val node_var : manager -> node -> int
(** @raise Invalid_argument on terminals. *)

val node_low : manager -> node -> node

val node_high : manager -> node -> node

val is_terminal : node -> bool

val size : manager -> node -> int
(** Number of distinct internal nodes reachable from the handle. *)

val probability : manager -> (int -> float) -> node -> float
(** [probability m p f] — exact probability that [f] is true when variable
    [v] is independently true with probability [p v]. Linear in the number
    of nodes (memoised Shannon expansion). *)

val eval : manager -> (int -> bool) -> node -> bool

val of_fault_tree :
  ?assume:(int -> bool option) -> ?guard:Sdft_util.Guard.t -> Fault_tree.t ->
  manager * node
(** Compile a fault tree: variables are basic-event indices, ordered by
    first DFS visit from the top gate (a standard static ordering
    heuristic). [assume] fixes chosen basic events to constants — used by
    the SD analysis to condition on static events of a cutset being failed.
    K-of-N gates are compiled directly. *)

val of_fault_tree_gate :
  ?assume:(int -> bool option) -> ?guard:Sdft_util.Guard.t -> Fault_tree.t ->
  int -> manager * node
(** Same, but compile the function of an arbitrary gate of the tree. *)

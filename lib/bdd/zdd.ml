(* Handles: 0 = bottom (empty family), 1 = top ({empty set}), >= 2 internal.
   Node (v, low, high) denotes low ∪ { s ∪ {v} | s ∈ high }; zero-suppression
   rule: high = bottom collapses to low. *)

type node = int

type manager = {
  nv : int;
  level_of : int array;
  var_of : int array;
  guard : Sdft_util.Guard.t;
  vars : int Sdft_util.Vec.t;
  lows : int Sdft_util.Vec.t;
  highs : int Sdft_util.Vec.t;
  unique : (int * int * int, int) Hashtbl.t;
  union_cache : (int * int, int) Hashtbl.t;
  inter_cache : (int * int, int) Hashtbl.t;
  diff_cache : (int * int, int) Hashtbl.t;
  without_cache : (int * int, int) Hashtbl.t;
  minimal_cache : (int, int) Hashtbl.t;
}

let bottom = 0

let top = 1

let is_terminal n = n < 2

let manager ?var_order ?(guard = Sdft_util.Guard.none) ~n_vars () =
  let var_of =
    match var_order with
    | None -> Array.init n_vars (fun i -> i)
    | Some order ->
      if Array.length order <> n_vars then
        invalid_arg "Zdd.manager: var_order has wrong length";
      Array.copy order
  in
  let level_of = Array.make n_vars 0 in
  Array.iteri (fun level v -> level_of.(v) <- level) var_of;
  {
    nv = n_vars;
    level_of;
    var_of;
    guard;
    vars = Sdft_util.Vec.create ();
    lows = Sdft_util.Vec.create ();
    highs = Sdft_util.Vec.create ();
    unique = Hashtbl.create 1024;
    union_cache = Hashtbl.create 1024;
    inter_cache = Hashtbl.create 256;
    diff_cache = Hashtbl.create 256;
    without_cache = Hashtbl.create 1024;
    minimal_cache = Hashtbl.create 256;
  }

(* The operation caches are pure memo tables: dropping them loses nothing but
   time on re-derivation, while the node store (vars/lows/highs/unique) must
   survive because node handles stay live in callers. A long sweep that
   builds one family per module calls this between modules so dead memo
   entries do not accumulate under the memory ceiling. *)
let clear_caches m =
  Hashtbl.reset m.union_cache;
  Hashtbl.reset m.inter_cache;
  Hashtbl.reset m.diff_cache;
  Hashtbl.reset m.without_cache;
  Hashtbl.reset m.minimal_cache

let node_var m n = Sdft_util.Vec.get m.vars (n - 2)

let node_low m n = Sdft_util.Vec.get m.lows (n - 2)

let node_high m n = Sdft_util.Vec.get m.highs (n - 2)

let level m n = if is_terminal n then max_int else m.level_of.(node_var m n)

(* As in [Bdd.mk], the cons point funnels every construction, so an
   amortized guard probe here covers all the apply-style operations — but
   the recursive operations below also probe on their own entry, because a
   memo-heavy recursion can traverse large shared structures while consing
   nothing new. *)
let mk m v low high =
  Sdft_util.Guard.check m.guard;
  if high = bottom then low
  else begin
    let key = (v, low, high) in
    match Hashtbl.find_opt m.unique key with
    | Some id -> id
    | None ->
      let id = Sdft_util.Vec.length m.vars + 2 in
      Sdft_util.Vec.push m.vars v;
      Sdft_util.Vec.push m.lows low;
      Sdft_util.Vec.push m.highs high;
      Hashtbl.add m.unique key id;
      id
  end

let elem m v =
  if v < 0 || v >= m.nv then invalid_arg "Zdd.elem: out of range";
  mk m v bottom top

let node_top_level m n = level m n

let make_node m v low high =
  if v < 0 || v >= m.nv then invalid_arg "Zdd.make_node: variable out of range";
  let lv = m.level_of.(v) in
  if lv >= level m low || lv >= level m high then
    invalid_arg "Zdd.make_node: variable must be above both children";
  mk m v low high

let rec union m a b =
  Sdft_util.Guard.check m.guard;
  if a = bottom then b
  else if b = bottom then a
  else if a = b then a
  else begin
    let key = if a < b then (a, b) else (b, a) in
    match Hashtbl.find_opt m.union_cache key with
    | Some r -> r
    | None ->
      let la = level m a and lb = level m b in
      let r =
        if la < lb then mk m (node_var m a) (union m (node_low m a) b) (node_high m a)
        else if lb < la then mk m (node_var m b) (union m a (node_low m b)) (node_high m b)
        else
          mk m (node_var m a)
            (union m (node_low m a) (node_low m b))
            (union m (node_high m a) (node_high m b))
      in
      Hashtbl.add m.union_cache key r;
      r
  end

let rec inter m a b =
  Sdft_util.Guard.check m.guard;
  if a = bottom || b = bottom then bottom
  else if a = b then a
  else if a = top then if has_empty m b then top else bottom
  else if b = top then if has_empty m a then top else bottom
  else begin
    let key = if a < b then (a, b) else (b, a) in
    match Hashtbl.find_opt m.inter_cache key with
    | Some r -> r
    | None ->
      let la = level m a and lb = level m b in
      let r =
        if la < lb then inter m (node_low m a) b
        else if lb < la then inter m a (node_low m b)
        else
          mk m (node_var m a)
            (inter m (node_low m a) (node_low m b))
            (inter m (node_high m a) (node_high m b))
      in
      Hashtbl.add m.inter_cache key r;
      r
  end

and has_empty m n =
  if n = top then true
  else if n = bottom then false
  else has_empty m (node_low m n)

let rec diff m a b =
  Sdft_util.Guard.check m.guard;
  if a = bottom then bottom
  else if b = bottom then a
  else if a = b then bottom
  else begin
    let key = (a, b) in
    match Hashtbl.find_opt m.diff_cache key with
    | Some r -> r
    | None ->
      let la = level m a and lb = level m b in
      let r =
        if la < lb then
          if is_terminal a then a
          else mk m (node_var m a) (diff m (node_low m a) b) (node_high m a)
        else if lb < la then diff m a (node_low m b)
        else
          mk m (node_var m a)
            (diff m (node_low m a) (node_low m b))
            (diff m (node_high m a) (node_high m b))
      in
      Hashtbl.add m.diff_cache key r;
      r
  end

(* Remove from [a] all sets that are supersets of some set in [b]. *)
let rec without m a b =
  Sdft_util.Guard.check m.guard;
  if a = bottom then bottom
  else if b = bottom then a
  else if b = top then bottom (* the empty set subsumes everything *)
  else if a = top then
    (* the empty set is subsumed only by the empty set, which b may contain
       deeper down its low chain even though b is not the top terminal *)
    if has_empty m b then bottom else top
  else if a = b then bottom (* every set subsumes itself *)
  else begin
    let key = (a, b) in
    match Hashtbl.find_opt m.without_cache key with
    | Some r -> r
    | None ->
      let la = level m a and lb = level m b in
      let r =
        if la < lb then
          (* b's sets do not mention a's top variable; a set with or without
             it is subsumed iff the rest is. *)
          mk m (node_var m a) (without m (node_low m a) b) (without m (node_high m a) b)
        else if lb < la then
          (* a's sets never contain b's top variable, so only b's sets
             without it can subsume. *)
          without m a (node_low m b)
        else begin
          let v = node_var m a in
          let low = without m (node_low m a) (node_low m b) in
          let high =
            without m (without m (node_high m a) (node_high m b)) (node_low m b)
          in
          mk m v low high
        end
      in
      Hashtbl.add m.without_cache key r;
      r
  end

let rec minimal m n =
  Sdft_util.Guard.check m.guard;
  if is_terminal n then n
  else
    match Hashtbl.find_opt m.minimal_cache n with
    | Some r -> r
    | None ->
      let low = minimal m (node_low m n) in
      let high = without m (minimal m (node_high m n)) low in
      let r = mk m (node_var m n) low high in
      Hashtbl.add m.minimal_cache n r;
      r

(* Bottom-up memoized fold, with an explicit worklist instead of recursion:
   a chain-shaped ZDD (one node per level) is as deep as the variable count,
   and recursing down it overflows the native stack long before the node
   store is any burden. A node is popped once its children have values; a
   node whose children are pending stays on the worklist below them. *)
let fold m root ~bottom:vbot ~top:vtop ~node =
  let memo = Hashtbl.create 64 in
  let value n =
    if n = bottom then Some vbot
    else if n = top then Some vtop
    else Hashtbl.find_opt memo n
  in
  let stack = ref [ root ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | n :: rest -> (
      Sdft_util.Guard.check m.guard;
      match value n with
      | Some _ -> stack := rest
      | None -> (
        let low = node_low m n and high = node_high m n in
        match (value low, value high) with
        | Some lv, Some hv ->
          Hashtbl.replace memo n (node (node_var m n) lv hv);
          stack := rest
        | lv, hv ->
          if hv = None then stack := high :: !stack;
          if lv = None then stack := low :: !stack))
  done;
  match value root with Some v -> v | None -> assert false

(* Saturating: a family over [k] variables can hold up to [2^k] sets, which
   wraps native ints silently. [max_int] therefore means "at least max_int". *)
let sat_add a b = if a > max_int - b then max_int else a + b

let count m n = fold m n ~bottom:0 ~top:1 ~node:(fun _ low high -> sat_add low high)

let weighted_count m w n =
  fold m n ~bottom:0.0 ~top:1.0 ~node:(fun v low high -> low +. (w v *. high))

let iter_sets m root f =
  (* Explicit stack, same DFS order as the natural recursion (low branch
     fully before the high branch); the accumulated prefixes share tails. *)
  let stack = ref [ ([], root) ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | (acc, n) :: rest ->
      Sdft_util.Guard.check m.guard;
      if n = top then begin
        stack := rest;
        f (List.rev acc)
      end
      else if n = bottom then stack := rest
      else
        stack :=
          (acc, node_low m n) :: (node_var m n :: acc, node_high m n) :: rest
  done

let to_cutsets m root =
  let out = ref [] in
  iter_sets m root (fun s -> out := Sdft_util.Int_set.of_list s :: !out);
  List.rev !out

let of_sets m sets =
  let of_set s =
    (* Build from the deepest level upwards so that mk sees ordered vars. *)
    let by_level =
      List.sort
        (fun a b -> compare m.level_of.(b) m.level_of.(a))
        (Sdft_util.Int_set.to_list s)
    in
    List.fold_left (fun acc v -> mk m v bottom acc) top by_level
  in
  List.fold_left (fun acc s -> union m acc (of_set s)) bottom sets

let size m n =
  let seen = Hashtbl.create 64 in
  let stack = ref [ n ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | n :: rest ->
      stack := rest;
      if (not (is_terminal n)) && not (Hashtbl.mem seen n) then begin
        Hashtbl.add seen n ();
        stack := node_low m n :: node_high m n :: !stack
      end
  done;
  Hashtbl.length seen

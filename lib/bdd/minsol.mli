(** Minimal solutions of a coherent boolean function (Rauzy's algorithm).

    Converts the BDD of a monotone structure function into the ZDD of its
    minimal cutsets: at every node the cutsets of the high branch that are
    already subsumed by a cutset of the low branch are dropped. Together
    with {!Zdd.to_cutsets} this yields the exact minimal-cutset list — the
    oracle against which the MOCUS implementation is validated, and the
    engine used by the SD analysis to compute the trigger sets [A_1..A_k]
    of Section V-C. *)

val minimal_cutsets_zdd : Bdd.manager -> Bdd.node -> Zdd.manager * Zdd.node
(** The returned ZDD manager shares the BDD manager's variable order {e and}
    its resource guard, so the subsumption passes answer to the same
    deadline/memory ceiling as the compilation that fed them. *)

val minimal_cutsets : Bdd.manager -> Bdd.node -> Sdft_util.Int_set.t list
(** Enumerated cutsets (exact, no cutoff), sorted by (size, lex). *)

val fault_tree_cutsets :
  ?guard:Sdft_util.Guard.t -> Fault_tree.t -> Sdft_util.Int_set.t list
(** Compile the tree and extract all minimal cutsets. Exponential in the
    worst case; intended for moderate trees and cross-checking. [guard] is
    checkpointed during BDD construction (see {!Bdd.manager}). *)

val cutsets_above :
  ?max_order:int ->
  Zdd.manager ->
  Zdd.node ->
  probs:(int -> float) ->
  cutoff:float ->
  Sdft_util.Int_set.t list
(** Enumerate only the cutsets of the family whose probability product
    exceeds [cutoff] and whose cardinality is within [max_order]. Along a
    ZDD path the product of included variables only decreases and the
    cardinality only grows, so whole subtrees are pruned soundly {e inside}
    the walk — this makes the BDD pipeline usable as a cutset {e engine} on
    industrial models whose total cutset count is astronomic. *)

val fault_tree_cutsets_above :
  ?max_order:int -> ?guard:Sdft_util.Guard.t -> Fault_tree.t -> cutoff:float ->
  Sdft_util.Int_set.t list
(** [of_fault_tree] + [minimal_cutsets_zdd] + [cutsets_above] with the
    tree's own probabilities. [guard] is checkpointed during BDD
    construction (see {!Bdd.manager}). *)

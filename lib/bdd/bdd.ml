(* Terminals are the handles 0 (false) and 1 (true); internal nodes are
   handles >= 2 indexing the [vars]/[lows]/[highs] vectors (offset by 2). *)

type node = int

type manager = {
  nv : int;
  level_of : int array; (* variable -> level, smaller = closer to root *)
  var_of : int array; (* level -> variable *)
  vars : int Sdft_util.Vec.t;
  lows : int Sdft_util.Vec.t;
  highs : int Sdft_util.Vec.t;
  unique : (int * int * int, int) Hashtbl.t;
  and_cache : (int * int, int) Hashtbl.t;
  or_cache : (int * int, int) Hashtbl.t;
  not_cache : (int, int) Hashtbl.t;
  guard : Sdft_util.Guard.t;
}

let zero = 0

let one = 1

let is_terminal n = n < 2

let manager ?var_order ?(guard = Sdft_util.Guard.none) ~n_vars () =
  if n_vars < 0 then invalid_arg "Bdd.manager: negative variable count";
  let var_of =
    match var_order with
    | None -> Array.init n_vars (fun i -> i)
    | Some order ->
      if Array.length order <> n_vars then
        invalid_arg "Bdd.manager: var_order has wrong length";
      let seen = Array.make n_vars false in
      Array.iter
        (fun v ->
          if v < 0 || v >= n_vars || seen.(v) then
            invalid_arg "Bdd.manager: var_order is not a permutation";
          seen.(v) <- true)
        order;
      Array.copy order
  in
  let level_of = Array.make n_vars 0 in
  Array.iteri (fun level v -> level_of.(v) <- level) var_of;
  {
    nv = n_vars;
    level_of;
    var_of;
    vars = Sdft_util.Vec.create ();
    lows = Sdft_util.Vec.create ();
    highs = Sdft_util.Vec.create ();
    unique = Hashtbl.create 1024;
    and_cache = Hashtbl.create 1024;
    or_cache = Hashtbl.create 1024;
    not_cache = Hashtbl.create 64;
    guard;
  }

let n_vars m = m.nv

let guard m = m.guard

let node_var m n =
  if is_terminal n then invalid_arg "Bdd.node_var: terminal";
  Sdft_util.Vec.get m.vars (n - 2)

let node_low m n =
  if is_terminal n then invalid_arg "Bdd.node_low: terminal";
  Sdft_util.Vec.get m.lows (n - 2)

let node_high m n =
  if is_terminal n then invalid_arg "Bdd.node_high: terminal";
  Sdft_util.Vec.get m.highs (n - 2)

let level m n = if is_terminal n then max_int else m.level_of.(node_var m n)

let mk m v low high =
  (* The cons point is the one place every BDD construction funnels through,
     so an amortized guard probe here covers apply/ite/compile uniformly. *)
  Sdft_util.Guard.check m.guard;
  if low = high then low
  else begin
    let key = (v, low, high) in
    match Hashtbl.find_opt m.unique key with
    | Some id -> id
    | None ->
      let id = Sdft_util.Vec.length m.vars + 2 in
      Sdft_util.Vec.push m.vars v;
      Sdft_util.Vec.push m.lows low;
      Sdft_util.Vec.push m.highs high;
      Hashtbl.add m.unique key id;
      id
  end

let var m v =
  if v < 0 || v >= m.nv then invalid_arg "Bdd.var: out of range";
  mk m v zero one

let level_of_var m v =
  if v < 0 || v >= m.nv then invalid_arg "Bdd.level_of_var: out of range";
  m.level_of.(v)

let cofactors m top n =
  if is_terminal n || level m n > top then (n, n)
  else (node_low m n, node_high m n)

let rec apply_and m a b =
  if a = zero || b = zero then zero
  else if a = one then b
  else if b = one then a
  else if a = b then a
  else begin
    let key = if a < b then (a, b) else (b, a) in
    match Hashtbl.find_opt m.and_cache key with
    | Some r -> r
    | None ->
      let top = min (level m a) (level m b) in
      let a0, a1 = cofactors m top a and b0, b1 = cofactors m top b in
      let r = mk m m.var_of.(top) (apply_and m a0 b0) (apply_and m a1 b1) in
      Hashtbl.add m.and_cache key r;
      r
  end

let rec apply_or m a b =
  if a = one || b = one then one
  else if a = zero then b
  else if b = zero then a
  else if a = b then a
  else begin
    let key = if a < b then (a, b) else (b, a) in
    match Hashtbl.find_opt m.or_cache key with
    | Some r -> r
    | None ->
      let top = min (level m a) (level m b) in
      let a0, a1 = cofactors m top a and b0, b1 = cofactors m top b in
      let r = mk m m.var_of.(top) (apply_or m a0 b0) (apply_or m a1 b1) in
      Hashtbl.add m.or_cache key r;
      r
  end

let rec apply_not m a =
  if a = zero then one
  else if a = one then zero
  else
    match Hashtbl.find_opt m.not_cache a with
    | Some r -> r
    | None ->
      let r =
        mk m (node_var m a) (apply_not m (node_low m a)) (apply_not m (node_high m a))
      in
      Hashtbl.add m.not_cache a r;
      r

let ite m c t e =
  apply_or m (apply_and m c t) (apply_and m (apply_not m c) e)

let rec restrict m n v value =
  if is_terminal n then n
  else begin
    let nv = node_var m n in
    if m.level_of.(nv) > m.level_of.(v) then n
    else if nv = v then if value then node_high m n else node_low m n
    else
      mk m nv (restrict m (node_low m n) v value) (restrict m (node_high m n) v value)
  end

let size m n =
  let seen = Hashtbl.create 64 in
  let rec walk n =
    if (not (is_terminal n)) && not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      walk (node_low m n);
      walk (node_high m n)
    end
  in
  walk n;
  Hashtbl.length seen

let probability m p root =
  let memo = Hashtbl.create 256 in
  let rec go n =
    if n = zero then 0.0
    else if n = one then 1.0
    else
      match Hashtbl.find_opt memo n with
      | Some x -> x
      | None ->
        let pv = p (node_var m n) in
        let x =
          (pv *. go (node_high m n)) +. ((1.0 -. pv) *. go (node_low m n))
        in
        Hashtbl.add memo n x;
        x
  in
  go root

let rec eval m assignment n =
  if n = zero then false
  else if n = one then true
  else if assignment (node_var m n) then eval m assignment (node_high m n)
  else eval m assignment (node_low m n)

(* Variable order by first DFS visit from the given root gate: keeps
   structurally related events adjacent, the usual static heuristic. *)
let dfs_order tree root_gate =
  let nb = Fault_tree.n_basics tree in
  let order = Sdft_util.Vec.create () in
  let seen_b = Array.make nb false in
  let seen_g = Array.make (Fault_tree.n_gates tree) false in
  let rec walk_gate g =
    if not seen_g.(g) then begin
      seen_g.(g) <- true;
      Array.iter
        (function
          | Fault_tree.B b ->
            if not seen_b.(b) then begin
              seen_b.(b) <- true;
              Sdft_util.Vec.push order b
            end
          | Fault_tree.G g' -> walk_gate g')
        (Fault_tree.gate_inputs tree g)
    end
  in
  walk_gate root_gate;
  (* Events not under the root keep their natural order at the bottom. *)
  for b = 0 to nb - 1 do
    if not seen_b.(b) then Sdft_util.Vec.push order b
  done;
  Sdft_util.Vec.to_array order

let compile m tree ~assume root_gate =
  let n_gates = Fault_tree.n_gates tree in
  let memo = Array.make n_gates (-1) in
  let node_of_basic b =
    match assume b with
    | Some true -> one
    | Some false -> zero
    | None -> var m b
  in
  let rec gate g =
    if memo.(g) >= 0 then memo.(g)
    else begin
      let inputs = Fault_tree.gate_inputs tree g in
      let input_node = function
        | Fault_tree.B b -> node_of_basic b
        | Fault_tree.G g' -> gate g'
      in
      let r =
        match Fault_tree.gate_kind tree g with
        | Fault_tree.And ->
          Array.fold_left (fun acc n -> apply_and m acc (input_node n)) one inputs
        | Fault_tree.Or ->
          Array.fold_left (fun acc n -> apply_or m acc (input_node n)) zero inputs
        | Fault_tree.Atleast k ->
          (* atleast(k, xs): dynamic programming over suffixes. acc.(j) is
             "at least j of the inputs seen so far" after each step. *)
          let njs = Array.length inputs in
          let acc = Array.make (k + 1) zero in
          acc.(0) <- one;
          for i = 0 to njs - 1 do
            let x = input_node inputs.(i) in
            for j = min k (i + 1) downto 1 do
              acc.(j) <- apply_or m acc.(j) (apply_and m x acc.(j - 1))
            done
          done;
          acc.(k)
      in
      memo.(g) <- r;
      r
    end
  in
  gate root_gate

let of_fault_tree_gate ?(assume = fun _ -> None) ?guard tree g =
  let order = dfs_order tree g in
  let m =
    manager ~var_order:order ?guard ~n_vars:(Fault_tree.n_basics tree) ()
  in
  let root = compile m tree ~assume g in
  (m, root)

let of_fault_tree ?assume ?guard tree =
  of_fault_tree_gate ?assume ?guard tree (Fault_tree.top tree)

let minimal_cutsets_zdd bm root =
  let n = Bdd.n_vars bm in
  let order = Array.make n 0 in
  for v = 0 to n - 1 do
    order.(Bdd.level_of_var bm v) <- v
  done;
  (* The ZDD inherits the BDD manager's guard: the subsumption passes below
     ([Zdd.without] in particular) can blow up on their own, long after BDD
     construction finished, and must answer to the same deadline/ceiling. *)
  let zm = Zdd.manager ~var_order:order ~guard:(Bdd.guard bm) ~n_vars:n () in
  let memo : (Bdd.node, Zdd.node) Hashtbl.t = Hashtbl.create 256 in
  (* Rauzy: at node (v, f0, f1) of a monotone function, the minimal cutsets
     are those of f0 (without v) plus v joined to the minimal cutsets of f1
     that no cutset of f0 subsumes. *)
  let rec mcs (node : Bdd.node) : Zdd.node =
    if (node :> int) = 0 then Zdd.bottom
    else if (node :> int) = 1 then Zdd.top
    else
      match Hashtbl.find_opt memo node with
      | Some z -> z
      | None ->
        let v = Bdd.node_var bm node in
        let k0 = mcs (Bdd.node_low bm node) in
        let k1 = Zdd.without zm (mcs (Bdd.node_high bm node)) k0 in
        let z =
          if k1 = Zdd.bottom then k0 else Zdd.make_node zm v k0 k1
        in
        Hashtbl.add memo node z;
        z
  in
  let z = mcs root in
  (zm, z)

let minimal_cutsets bm root =
  let zm, z = minimal_cutsets_zdd bm root in
  let sets = Zdd.to_cutsets zm z in
  List.sort Sdft_util.Int_set.compare sets

let fault_tree_cutsets ?guard tree =
  let bm, root = Bdd.of_fault_tree ?guard tree in
  minimal_cutsets bm root

let cutsets_above ?max_order zm root ~probs ~cutoff =
  let out = ref [] in
  let order_cap = match max_order with None -> max_int | Some k -> k in
  (* Paths carry the probability product and cardinality of the included
     variables; a ZDD node's high branch multiplies by p(var) <= 1 and adds
     one element, so pruning below the cutoff — and past the order bound —
     is sound for the whole subtree. Pruning the order here (rather than
     post-filtering the full enumeration) makes an order bound actually
     bound the work and memory of the walk. *)
  let rec walk acc n_included product node =
    if product >= cutoff then begin
      if node = Zdd.top then out := Sdft_util.Int_set.of_list acc :: !out
      else if node <> Zdd.bottom then begin
        let v = Zdd.node_var zm node in
        walk acc n_included product (Zdd.node_low zm node);
        if n_included < order_cap then
          walk (v :: acc) (n_included + 1) (product *. probs v)
            (Zdd.node_high zm node)
      end
    end
  in
  walk [] 0 1.0 root;
  List.sort Sdft_util.Int_set.compare !out

let fault_tree_cutsets_above ?max_order ?guard tree ~cutoff =
  let bm, root = Bdd.of_fault_tree ?guard tree in
  let zm, z = minimal_cutsets_zdd bm root in
  cutsets_above ?max_order zm z ~probs:(Fault_tree.prob tree) ~cutoff

(** Zero-suppressed decision diagrams over families of sets.

    Cutset collections are families of sets of basic events; ZDDs represent
    them compactly and support the subsumption operations needed by the
    minimal-solutions algorithm. Shares the variable-order convention of
    {!Bdd} (levels from the root down). *)

type manager

type node = private int

val manager :
  ?var_order:int array -> ?guard:Sdft_util.Guard.t -> n_vars:int -> unit ->
  manager
(** [guard] (default {!Sdft_util.Guard.none}) is checkpointed at every node
    construction {e and} on entry to each recursive operation ([union],
    [inter], [diff], [without], [minimal]) and traversal, so a blowing-up
    subsumption pass raises {!Sdft_util.Guard.Limit_hit} once a resource
    limit trips instead of running to completion past it. *)

val clear_caches : manager -> unit
(** Drop the operation memo tables (union/inter/diff/without/minimal). The
    node store is kept, so every node handle stays valid; only memoized
    derivations are re-computed on demand. Call between independent modules
    of a long analysis so dead memo entries do not accumulate under a
    memory ceiling. *)

val bottom : node
(** The empty family, {[ {} ]}. *)

val top : node
(** The family containing only the empty set, {[ {{}} ]}. *)

val elem : manager -> int -> node
(** The family [{{v}}]. *)

val make_node : manager -> int -> node -> node -> node
(** [make_node m v low high] is the canonical node for
    [low ∪ { s ∪ {v} | s ∈ high }]. The variable [v] must sit strictly above
    the top variables of [low] and [high] in the order.

    @raise Invalid_argument when the level constraint is violated. *)

val node_top_level : manager -> node -> int
(** Level of the root variable; [max_int] for terminals. *)

val node_var : manager -> node -> int
(** Root variable of an internal node. *)

val node_low : manager -> node -> node
(** Sets not containing the root variable. *)

val node_high : manager -> node -> node
(** Rests of the sets containing the root variable. *)

val is_terminal : node -> bool

val union : manager -> node -> node -> node

val inter : manager -> node -> node -> node

val diff : manager -> node -> node -> node

val without : manager -> node -> node -> node
(** [without m u v] removes from [u] every set that is a (non-strict)
    superset of some set in [v] — the subsumption difference at the heart of
    minimal-solution extraction. *)

val minimal : manager -> node -> node
(** Keep only the inclusion-minimal sets of the family. *)

val count : manager -> node -> int
(** Number of sets in the family, {e saturating}: a result of [max_int]
    means "at least [max_int]" (a family over [k] variables can hold [2^k]
    sets, far past native-int range). Stack-safe on chain-shaped ZDDs. *)

val weighted_count : manager -> (int -> float) -> node -> float
(** [weighted_count m w n] is [sum over sets S of (prod over v in S of w v)]
    — with [w] a probability map this is the rare-event approximation over
    the whole family, computed in one linear pass over the shared ZDD
    without ever enumerating the (possibly astronomic) sets. Memoized
    bottom-up: [W(bottom) = 0], [W(top) = 1],
    [W(v, low, high) = W(low) + w v * W(high)]. *)

val fold :
  manager -> node -> bottom:'a -> top:'a -> node:(int -> 'a -> 'a -> 'a) ->
  'a
(** Memoized bottom-up structural fold (each shared node visited once);
    {!count} and {!weighted_count} are instances. Stack-safe. *)

val iter_sets : manager -> node -> (int list -> unit) -> unit
(** Enumerate the sets; elements are produced in level order. Stack-safe on
    chain-shaped ZDDs (depth used to be bounded by the recursion limit). *)

val to_cutsets : manager -> node -> Sdft_util.Int_set.t list

val of_sets : manager -> Sdft_util.Int_set.t list -> node

val size : manager -> node -> int

(* ZDD-backed cutset engine: a peer of MOCUS built on the BDD/ZDD layer.

   Per independent module of the (translated, static) tree — bottom-up —
   the module's structure function is compiled to a BDD in which nested
   module gates appear as pseudo-variables, the minimal solutions are
   extracted as a ZDD (Rauzy), and three quantities are folded out of the
   shared diagram without ever enumerating the family:

   - the rare-event mass [W] (sum over all minimal cutsets of the product
     of their probabilities), by {!Zdd.weighted_count} with a module
     pseudo-variable weighted by its own [W];
   - a saturating count of the minimal cutsets;
   - the enumeration bounds: the maximum single-cutset product and the
     minimum cutset cardinality, used to prune the top-k walk below.

   Modules have disjoint strict interiors (a basic shared across two
   subtrees prevents both from being modules), so the minimal cutsets of
   the whole tree are exactly the compositions of per-module minimal
   cutsets, and the rare-event mass factorizes through the pseudo-variable
   weights. The composition is only ever materialized for the cutsets
   above the caller's cutoff (and within its order bound) — everything
   below is accounted exactly by [total_mass - emitted_mass], which is what
   lets the analysis report a certified interval with zero unaccounted
   pruned mass where MOCUS can only bound what it dropped. *)

module Int_set = Sdft_util.Int_set
module Guard = Sdft_util.Guard
module Metrics = Sdft_util.Metrics
module Trace = Sdft_util.Trace
module Obs = Sdft_util.Obs

(* Per-observability-context instrument handles (physical-equality fast
   path on the default context — see Sdft_util.Obs). *)
type handles = {
  m_runs : Metrics.counter;
  m_modules : Metrics.counter;
  m_emitted : Metrics.counter;
  m_peak_nodes : Metrics.gauge;
}

let handles_in m =
  {
    m_runs = Metrics.counter_in m "zdd.runs";
    m_modules = Metrics.counter_in m "zdd.modules";
    m_emitted = Metrics.counter_in m "zdd.cutsets_emitted";
    m_peak_nodes = Metrics.gauge_max_in m "zdd.peak_nodes";
  }

let default_handles = handles_in Metrics.default

let handles_of m =
  if m == Metrics.default then default_handles else handles_in m

type module_stats = {
  ms_gate : int;
  ms_basics : int;
  ms_gates : int;
  ms_and : int;
  ms_or : int;
  ms_atleast : int;
  ms_inner_modules : int;
}

(* Stats of each module's *cut* subtree: the DFS stops at nested module
   gates (counted as leaves), because that is exactly the shape of the BDD
   the engine will compile for the module — the numbers the auto-selector
   needs. *)
let module_stats tree =
  let ng = Fault_tree.n_gates tree in
  let is_mod = Array.make ng false in
  let mods = Modules.find tree in
  List.iter (fun g -> is_mod.(g) <- true) mods;
  List.map
    (fun g ->
      let basics = ref Int_set.empty in
      let gates = ref 0
      and n_and = ref 0
      and n_or = ref 0
      and n_atleast = ref 0
      and inner = ref 0 in
      let seen_gate = Hashtbl.create 16 in
      let rec visit = function
        | Fault_tree.B b -> basics := Int_set.add b !basics
        | Fault_tree.G h ->
          if h <> g && is_mod.(h) then incr inner
          else if not (Hashtbl.mem seen_gate h) then begin
            Hashtbl.add seen_gate h ();
            incr gates;
            (match Fault_tree.gate_kind tree h with
            | Fault_tree.And -> incr n_and
            | Fault_tree.Or -> incr n_or
            | Fault_tree.Atleast _ -> incr n_atleast);
            Array.iter visit (Fault_tree.gate_inputs tree h)
          end
      in
      visit (Fault_tree.G g);
      {
        ms_gate = g;
        ms_basics = Int_set.cardinal !basics;
        ms_gates = !gates;
        ms_and = !n_and;
        ms_or = !n_or;
        ms_atleast = !n_atleast;
        ms_inner_modules = !inner;
      })
    mods

type result = {
  cutsets : Int_set.t list;
  total_mass : float;
  emitted_mass : float;
  residual_mass : float;
  n_minimal : int;
  n_minimal_saturated : bool;
  n_modules : int;
  max_zdd_nodes : int;
}

(* Per-module compiled state. The ZDD manager is kept alive (node handles
   feed the enumeration below) but its operation caches are dropped as soon
   as the module's folds are done. *)
type mod_info = {
  mi_zm : Zdd.manager;
  mi_root : Zdd.node;
  mi_w : float;  (* rare-event mass of the module's family *)
  mi_mx : float;  (* max single-cutset product: enumeration bound *)
  mi_count : int;  (* saturating minimal-cutset count *)
  mi_min_order : int;  (* min cutset cardinality: order-pruning bound *)
}

let sat_add a b = if a > max_int - b then max_int else a + b

let sat_mul a b =
  if a = 0 || b = 0 then 0 else if a > max_int / b then max_int else a * b

(* K-of-N over already-compiled inputs: standard suffix DP
   [need i j] = "at least j of inputs i..n-1 fail". *)
let atleast bm inputs k =
  let n = Array.length inputs in
  let memo = Hashtbl.create 16 in
  let rec need i j =
    if j <= 0 then Bdd.one
    else if n - i < j then Bdd.zero
    else
      match Hashtbl.find_opt memo (i, j) with
      | Some f -> f
      | None ->
        let f =
          Bdd.apply_or bm
            (Bdd.apply_and bm inputs.(i) (need (i + 1) (j - 1)))
            (need (i + 1) j)
        in
        Hashtbl.add memo (i, j) f;
        f
  in
  need 0 k

let run_inner ?(cutoff = 0.0) ?max_order ?(guard = Guard.none) ~fp tree =
  (* One unamortized probe up front: on small trees the strided checks
     inside the BDD/ZDD recursions may never fire, and an already-expired
     deadline must surface as a generation limit, not leak into the
     quantification phase. *)
  Guard.check_now guard;
  let nb = Fault_tree.n_basics tree in
  let ng = Fault_tree.n_gates tree in
  (* Pseudo-variable space: basic [b] is variable [b]; nested module gate
     [h] is variable [nb + h] in its parent's BDD. *)
  let nv = nb + ng in
  let mods = Modules.find tree in
  let is_mod = Array.make ng false in
  List.iter (fun g -> is_mod.(g) <- true) mods;
  let top_gate = Fault_tree.top tree in
  let infos : (int, mod_info) Hashtbl.t = Hashtbl.create 16 in
  let info h = Hashtbl.find infos h in
  let max_zdd_nodes = ref 0 in
  let compile_module g =
    Sdft_util.Failpoint.hit_in fp "zdd.module";
    (* Variable order: first DFS visit from the module root, the same
       static-ordering heuristic [Bdd.of_fault_tree] uses — then the unused
       variables, to complete the permutation the manager requires. *)
    let seen_var = Array.make nv false in
    let seen_gate = Array.make ng false in
    let order = ref [] in
    let rec visit = function
      | Fault_tree.B b ->
        if not seen_var.(b) then begin
          seen_var.(b) <- true;
          order := b :: !order
        end
      | Fault_tree.G h ->
        if h <> g && is_mod.(h) then begin
          let v = nb + h in
          if not seen_var.(v) then begin
            seen_var.(v) <- true;
            order := v :: !order
          end
        end
        else if not seen_gate.(h) then begin
          seen_gate.(h) <- true;
          Array.iter visit (Fault_tree.gate_inputs tree h)
        end
    in
    seen_gate.(g) <- true;
    Array.iter visit (Fault_tree.gate_inputs tree g);
    let var_order = Array.make nv 0 in
    let k = ref 0 in
    List.iter
      (fun v ->
        var_order.(!k) <- v;
        incr k)
      (List.rev !order);
    for v = 0 to nv - 1 do
      if not seen_var.(v) then begin
        var_order.(!k) <- v;
        incr k
      end
    done;
    let bm = Bdd.manager ~var_order ~guard ~n_vars:nv () in
    let memo : (int, Bdd.node) Hashtbl.t = Hashtbl.create 64 in
    let rec build_gate h =
      match Hashtbl.find_opt memo h with
      | Some f -> f
      | None ->
        let inputs = Array.map build_node (Fault_tree.gate_inputs tree h) in
        let f =
          match Fault_tree.gate_kind tree h with
          | Fault_tree.And -> Array.fold_left (Bdd.apply_and bm) Bdd.one inputs
          | Fault_tree.Or -> Array.fold_left (Bdd.apply_or bm) Bdd.zero inputs
          | Fault_tree.Atleast k -> atleast bm inputs k
        in
        Hashtbl.add memo h f;
        f
    and build_node = function
      | Fault_tree.B b -> Bdd.var bm b
      | Fault_tree.G h ->
        if h <> g && is_mod.(h) then Bdd.var bm (nb + h) else build_gate h
    in
    let root = build_gate g in
    let zm, z = Minsol.minimal_cutsets_zdd bm root in
    let w_of v = if v < nb then Fault_tree.prob tree v else (info (v - nb)).mi_w in
    let mx_of v =
      if v < nb then Fault_tree.prob tree v else (info (v - nb)).mi_mx
    in
    let cnt_of v = if v < nb then 1 else (info (v - nb)).mi_count in
    let ord_of v = if v < nb then 1 else (info (v - nb)).mi_min_order in
    let w = Zdd.weighted_count zm w_of z in
    let mx =
      Zdd.fold zm z ~bottom:0.0 ~top:1.0 ~node:(fun v low high ->
          Float.max low (mx_of v *. high))
    in
    let count =
      Zdd.fold zm z ~bottom:0 ~top:1 ~node:(fun v low high ->
          sat_add low (sat_mul (cnt_of v) high))
    in
    let min_order =
      Zdd.fold zm z ~bottom:max_int ~top:0 ~node:(fun v low high ->
          min low (sat_add (ord_of v) high))
    in
    max_zdd_nodes := max !max_zdd_nodes (Zdd.size zm z);
    (* The module is quantified; its memo tables are dead weight from here
       on (the node store stays — the enumeration walks it below). *)
    Zdd.clear_caches zm;
    Hashtbl.add infos g
      {
        mi_zm = zm;
        mi_root = z;
        mi_w = w;
        mi_mx = mx;
        mi_count = count;
        mi_min_order = min_order;
      }
  in
  (* Children before parents, so a nested module's weights exist by the
     time its parent's folds reference them. *)
  Array.iter
    (fun g -> if is_mod.(g) then compile_module g)
    (Fault_tree.topological_gates tree);
  let top_info = info top_gate in
  let order_cap = match max_order with None -> max_int | Some k -> k in
  let out = ref [] in
  let emitted = Sdft_util.Kahan.create () in
  (* Composed enumeration. [enum h ctx_mx ctx_ord emit] produces every
     fully-expanded cutset of module [h] — basics only — as
     [emit basics prod ord], pruned against the caller's context: any
     emission will be multiplied by outer factors of product at most
     [ctx_mx] and cardinality at least [ctx_ord], so subtrees that cannot
     reach the cutoff (or that must overrun the order bound) are skipped
     wholesale. Pending nested modules encountered on a ZDD path are
     carried at their optimistic bounds ([mi_mx], [mi_min_order]) and
     expanded recursively once the path completes. *)
  let rec enum h ctx_mx ctx_ord emit =
    let mi = info h in
    let zm = mi.mi_zm in
    let rec walk acc prod ord pend_mx pend_ord pending node =
      Guard.check guard;
      if
        prod *. pend_mx *. ctx_mx >= cutoff
        && sat_add ord (sat_add pend_ord ctx_ord) <= order_cap
      then begin
        if node = Zdd.top then expand acc prod ord pending ctx_mx ctx_ord emit
        else if node <> Zdd.bottom then begin
          let v = Zdd.node_var zm node in
          walk acc prod ord pend_mx pend_ord pending (Zdd.node_low zm node);
          if v < nb then
            walk (Int_set.add v acc)
              (prod *. Fault_tree.prob tree v)
              (ord + 1) pend_mx pend_ord pending (Zdd.node_high zm node)
          else begin
            let u = info (v - nb) in
            walk acc prod ord (pend_mx *. u.mi_mx)
              (sat_add pend_ord u.mi_min_order)
              (v - nb :: pending)
              (Zdd.node_high zm node)
          end
        end
      end
    in
    walk Int_set.empty 1.0 0 1.0 0 [] mi.mi_root
  and expand acc prod ord pending ctx_mx ctx_ord emit =
    match pending with
    | [] -> emit acc prod ord
    | u :: rest ->
      let rest_mx =
        List.fold_left (fun a x -> a *. (info x).mi_mx) 1.0 rest
      in
      let rest_ord =
        List.fold_left (fun a x -> sat_add a (info x).mi_min_order) 0 rest
      in
      enum u
        (ctx_mx *. prod *. rest_mx)
        (sat_add ctx_ord (sat_add ord rest_ord))
        (fun uacc uprod uord ->
          expand (Int_set.union acc uacc) (prod *. uprod) (sat_add ord uord)
            rest ctx_mx ctx_ord emit)
  in
  enum top_gate 1.0 0 (fun acc prod ord ->
      (* The walk pruned on optimistic bounds; the final product and
         cardinality are exact here. *)
      if prod >= cutoff && ord <= order_cap then begin
        out := acc :: !out;
        Sdft_util.Kahan.add emitted prod
      end);
  let cutsets = List.sort Int_set.compare !out in
  let emitted_mass = Sdft_util.Kahan.total emitted in
  {
    cutsets;
    total_mass = top_info.mi_w;
    emitted_mass;
    (* Exact by construction — the weighted count covers every minimal
       cutset, the emitted sum covers the materialized ones; the clamp only
       absorbs last-ulp float noise. *)
    residual_mass = Float.max 0.0 (top_info.mi_w -. emitted_mass);
    n_minimal = top_info.mi_count;
    n_minimal_saturated = top_info.mi_count = max_int;
    n_modules = List.length mods;
    max_zdd_nodes = !max_zdd_nodes;
  }

let run ?cutoff ?max_order ?guard ?(obs = Obs.default) tree =
  let h = handles_of obs.Obs.metrics in
  let sink = obs.Obs.trace in
  Trace.with_span ~sink "zdd.run" (fun () ->
      let r =
        run_inner ?cutoff ?max_order ?guard ~fp:obs.Obs.failpoints tree
      in
      Metrics.incr h.m_runs;
      Metrics.add h.m_modules r.n_modules;
      Metrics.add h.m_emitted (List.length r.cutsets);
      Metrics.set_max h.m_peak_nodes (float_of_int r.max_zdd_nodes);
      Trace.add_attr ~sink "modules" (Trace.Int r.n_modules);
      Trace.add_attr ~sink "emitted" (Trace.Int (List.length r.cutsets));
      Trace.add_attr ~sink "max_zdd_nodes" (Trace.Int r.max_zdd_nodes);
      r)

module Int_set = Sdft_util.Int_set
module Metrics = Sdft_util.Metrics
module Trace = Sdft_util.Trace
module Failpoint = Sdft_util.Failpoint
module Obs = Sdft_util.Obs

(* Instrument handles, resolved once per run from the observability
   context's registry. The default context's handles are resolved once per
   process and reused, so the historical global-metrics path costs the same
   as before. *)
type handles = {
  m_run_span : Metrics.span;
  m_runs : Metrics.counter;
  m_generated : Metrics.counter;
  m_pruned : Metrics.counter;
  m_deduped : Metrics.counter;
  m_cutsets : Metrics.counter;
  m_peak_stack : Metrics.gauge;
}

let handles_in m =
  {
    m_run_span = Metrics.span_in m "mocus.run";
    m_runs = Metrics.counter_in m "mocus.runs";
    m_generated = Metrics.counter_in m "mocus.partials_generated";
    m_pruned = Metrics.counter_in m "mocus.partials_pruned";
    m_deduped = Metrics.counter_in m "mocus.partials_deduped";
    m_cutsets = Metrics.counter_in m "mocus.cutsets";
    m_peak_stack = Metrics.gauge_max_in m "mocus.peak_stack_depth";
  }

let default_handles = handles_in Metrics.default

let handles_of m =
  if m == Metrics.default then default_handles else handles_in m

type options = {
  cutoff : float;
  max_order : int option;
  max_cutsets : int option;
  gate_bound_pruning : bool;
}

let default_options =
  {
    cutoff = 1e-15;
    max_order = None;
    max_cutsets = None;
    gate_bound_pruning = false;
  }

type result = {
  cutsets : Cutset.t list;
  generated : int;
  pruned_by_cutoff : int;
  pruned_mass : float;
  truncated : bool;
  limit_hit : Sdft_util.Guard.reason option;
}

(* A partial cutset: basic events chosen to fail, gates still to be failed,
   and the probability product of the chosen basics (an upper bound on the
   probability of any cutset refining this partial one, since gates can only
   add more basic events). *)
type partial = {
  basics : Int_set.t;
  gates : Int_set.t;
  prob : float;
}

(* Per-gate probability estimate, computed bottom-up: sum for OR, product
   for AND, product of the k largest child estimates for K-of-N. Exact for
   tree-shaped subtrees over independent events; for DAGs with shared
   events the product rule can under-estimate, which is why pruning with it
   is optional ("the RiskSpectrum-style heuristic") while the expansion
   ORDER it induces is always safe. *)
let gate_estimates tree =
  let nb = Fault_tree.n_basics tree and ng = Fault_tree.n_gates tree in
  ignore nb;
  let est = Array.make ng 1.0 in
  let node_est = function
    | Fault_tree.B b -> Fault_tree.prob tree b
    | Fault_tree.G g -> est.(g)
  in
  Array.iter
    (fun g ->
      let inputs = Fault_tree.gate_inputs tree g in
      let v =
        match Fault_tree.gate_kind tree g with
        | Fault_tree.Or ->
          Float.min 1.0 (Array.fold_left (fun acc n -> acc +. node_est n) 0.0 inputs)
        | Fault_tree.And ->
          Array.fold_left (fun acc n -> acc *. node_est n) 1.0 inputs
        | Fault_tree.Atleast k ->
          let vals = Array.map node_est inputs in
          Array.sort (fun a b -> compare b a) vals;
          let acc = ref 1.0 in
          for i = 0 to k - 1 do
            acc := !acc *. vals.(i)
          done;
          !acc
      in
      est.(g) <- v)
    (Fault_tree.topological_gates tree);
  est

let run_inner ~options ~guard ~obs ~h tree =
  let fp = obs.Obs.failpoints in
  let sink = obs.Obs.trace in
  let tree = Expand.expand_atleast tree in
  let estimate = gate_estimates tree in
  let out = Sdft_util.Vec.create () in
  let pruned = ref 0 in
  let pruned_mass = Sdft_util.Kahan.create () in
  let deduped = ref 0 in
  let pushes = ref 0 in
  let truncated = ref false in
  let seen : (Int_set.t * Int_set.t, unit) Hashtbl.t = Hashtbl.create 4096 in
  let stack = Stack.create () in
  let push p =
    incr pushes;
    let key = (p.basics, p.gates) in
    if Hashtbl.mem seen key then incr deduped
    else begin
      Hashtbl.add seen key ();
      Stack.push p stack
    end
  in
  let over_order basics =
    match options.max_order with
    | None -> false
    | Some k -> Int_set.cardinal basics > k
  in
  let budget_left () =
    match options.max_cutsets with
    | None -> true
    | Some m -> Sdft_util.Vec.length out < m
  in
  (* Expand AND gates first (no branching); among OR gates pick the one
     with the smallest probability estimate, so that improbable basics
     accumulate early and the cutoff prunes as soon as possible. *)
  let pick_gate gates =
    let gates = (gates : Int_set.t :> int array) in
    let n = Array.length gates in
    let best = ref (-1) and best_cost = ref infinity in
    let i = ref 0 in
    while !i < n do
      let g = gates.(!i) in
      (match Fault_tree.gate_kind tree g with
      | Fault_tree.And ->
        best := g;
        i := n (* AND wins outright: stop scanning *)
      | Fault_tree.Or ->
        if estimate.(g) < !best_cost then begin
          best := g;
          best_cost := estimate.(g)
        end
      | Fault_tree.Atleast _ -> assert false (* expanded above *));
      incr i
    done;
    !best
  in
  let add_node p node =
    match node with
    | Fault_tree.B b ->
      if Int_set.mem b p.basics then Some p
      else
        let prob = p.prob *. Fault_tree.prob tree b in
        Some { p with basics = Int_set.add b p.basics; prob }
    | Fault_tree.G g -> Some { p with gates = Int_set.add g p.gates }
  in
  let bound p =
    if not options.gate_bound_pruning then p.prob
    else Int_set.fold (fun g acc -> acc *. estimate.(g)) p.gates p.prob
  in
  let admit p =
    if bound p < options.cutoff || over_order p.basics then begin
      incr pruned;
      (* Every cutset refining this partial contains its basics, so the
         probability that the pruned branch contributes a failure is at most
         the basics' product [p.prob] (independent events). The Kahan-summed
         total upper-bounds the union mass dropped by the cutoff and order
         bounds, and feeds the analysis error budget. Note the mass bound is
         [p.prob] even under gate-bound pruning, whose tighter [bound p] can
         under-estimate on shared DAGs and would not be sound here. *)
      Sdft_util.Kahan.add pruned_mass p.prob;
      false
    end
    else true
  in
  push
    {
      basics = Int_set.empty;
      gates = Int_set.singleton (Fault_tree.top tree);
      prob = 1.0;
    };
  let limit = ref None in
  let max_depth = ref 0 in
  (try
    (* The resource checkpoints sit before the pop so that, when a limit
       fires, every partial not yet refined is still on the stack and its
       mass can be folded below — nothing escapes the accounting. *)
    while (not (Stack.is_empty stack)) && budget_left () do
    Sdft_util.Guard.check guard;
    Failpoint.hit_in fp "mocus.expand";
    let depth = Stack.length stack in
    if depth > !max_depth then max_depth := depth;
    let p = Stack.pop stack in
    if Int_set.cardinal p.gates = 0 then Sdft_util.Vec.push out p.basics
    else begin
      let g = pick_gate p.gates in
      let rest = Int_set.remove g p.gates in
      let p = { p with gates = rest } in
      let inputs = Fault_tree.gate_inputs tree g in
      match Fault_tree.gate_kind tree g with
      | Fault_tree.And ->
        let refined =
          Array.fold_left
            (fun acc node ->
              match acc with
              | None -> None
              | Some q -> add_node q node)
            (Some p) inputs
        in
        (match refined with
        | Some q when admit q -> push q
        | Some _ | None -> ())
      | Fault_tree.Or ->
        Array.iter
          (fun node ->
            match add_node p node with
            | Some q when admit q -> push q
            | Some _ | None -> ())
          inputs
      | Fault_tree.Atleast _ -> assert false
    end
    done
  with
  | Sdft_util.Guard.Limit_hit r -> limit := Some r
  | Out_of_memory -> limit := Some Sdft_util.Guard.Mem_limit);
  (match !limit with
  | None -> ()
  | Some _ ->
    (* Graceful degradation: every unexplored partial upper-bounds the
       union probability of all cutsets refining it by its basics product
       (same argument as [admit]), so folding the remaining stack into the
       pruned mass keeps the downstream certified interval sound even
       though generation stopped early. The stack holds each pending
       partial exactly once (the [seen] table dedupes pushes). *)
    Stack.iter (fun p -> Sdft_util.Kahan.add pruned_mass p.prob) stack;
    Stack.clear stack);
  if not (Stack.is_empty stack) then truncated := true;
  let generated = Sdft_util.Vec.length out in
  let cutsets = Cutset.minimize (Sdft_util.Vec.to_list out) in
  (* Publish the locally accumulated tallies with one atomic add each. *)
  Metrics.incr h.m_runs;
  Metrics.add h.m_generated !pushes;
  Metrics.add h.m_pruned !pruned;
  Metrics.add h.m_deduped !deduped;
  Metrics.add h.m_cutsets (List.length cutsets);
  Metrics.set_max h.m_peak_stack (float_of_int !max_depth);
  let result =
    {
      cutsets;
      generated;
      pruned_by_cutoff = !pruned;
      pruned_mass = Sdft_util.Kahan.total pruned_mass;
      truncated = !truncated;
      limit_hit = !limit;
    }
  in
  Trace.add_attr ~sink "cutsets" (Trace.Int (List.length cutsets));
  Trace.add_attr ~sink "generated" (Trace.Int !pushes);
  Trace.add_attr ~sink "pruned" (Trace.Int !pruned);
  Trace.add_attr ~sink "pruned_mass" (Trace.Float result.pruned_mass);
  result

let run ?(options = default_options) ?(guard = Sdft_util.Guard.none)
    ?(obs = Obs.default) tree =
  let h = handles_of obs.Obs.metrics in
  Trace.with_span ~sink:obs.Obs.trace "mocus.run" (fun () ->
      Metrics.time h.m_run_span (fun () -> run_inner ~options ~guard ~obs ~h tree))

let minimal_cutsets ?options ?guard ?obs tree =
  (run ?options ?guard ?obs tree).cutsets

(** The MOCUS minimal-cutset generation algorithm (Section IV-B).

    MOCUS systematically refines {e partial cutsets} — sets of basic events
    already chosen to fail plus gates still to be failed — starting from
    [{g_top}]. An OR gate branches the partial cutset, an AND gate extends
    it. Partial cutsets whose basic-event probability product falls below
    the cutoff [c*] are discarded (the paper's "static cutoff"), which is
    what makes the method scale to industrial trees. The surviving cutsets
    are minimized by subsumption. *)

type options = {
  cutoff : float;
      (** discard partial cutsets with probability below this (paper uses
          [1e-15]); [0.] disables pruning *)
  max_order : int option;
      (** optionally discard cutsets with more basic events than this *)
  max_cutsets : int option;
      (** optional safety valve on the number of generated (pre-minimization)
          cutsets; generation stops once reached *)
  gate_bound_pruning : bool;
      (** additionally prune partial cutsets whose product of basic-event
          probabilities {e and} per-gate probability estimates falls below
          the cutoff. The estimates (sum for OR, product for AND) are exact
          for independent tree-shaped logic but can under-estimate when the
          DAG shares events between the branches of an AND, so this mode —
          the behaviour of commercial MOCUS solvers — may drop borderline
          cutsets; the sound default uses only the paper's basics-only
          product. *)
}

val default_options : options
(** [cutoff = 1e-15], no order bound, no count bound, sound pruning only. *)

type result = {
  cutsets : Cutset.t list;  (** minimal cutsets, sorted by (size, lex) *)
  generated : int;  (** cutsets produced before minimization *)
  pruned_by_cutoff : int;  (** partial cutsets discarded by the cutoff *)
  pruned_mass : float;
      (** upper bound on the probability mass of the discarded branches: the
          Kahan sum, over every pruned partial cutset, of the probability
          product of its basic events (which bounds the probability that
          {e any} cutset refining the partial fails). Feeds the error budget
          of {!Sdft_analysis}. A sound bound with the default sound pruning
          (and for order-pruned partials); with [gate_bound_pruning] the
          pruning {e decision} uses gate estimates that can drop extra
          branches, but each dropped branch is still accounted at its sound
          basics-only product. *)
  truncated : bool;  (** true when [max_cutsets] stopped the search *)
  limit_hit : Sdft_util.Guard.reason option;
      (** a resource guard (or simulated limit) stopped the expansion early.
          Unlike [truncated], this degradation is {e accounted}: the basics
          product of every unexplored partial was folded into [pruned_mass],
          so the error budget built on it stays sound. *)
}

val run :
  ?options:options ->
  ?guard:Sdft_util.Guard.t ->
  ?obs:Sdft_util.Obs.t ->
  Fault_tree.t ->
  result
(** K-of-N gates are expanded transparently. [guard] (default
    {!Sdft_util.Guard.none}) is checkpointed once per expansion step; on
    {!Sdft_util.Guard.Limit_hit} (or [Out_of_memory]) the run returns the
    cutsets found so far with [limit_hit] set and the unexplored mass folded
    into [pruned_mass] instead of raising. The [mocus.expand] failpoint site
    of [obs] (default {!Sdft_util.Obs.default}) is checkpointed at the same
    place; metrics and trace spans go to the same context, including the
    [mocus.peak_stack_depth] high-water gauge. *)

val minimal_cutsets :
  ?options:options ->
  ?guard:Sdft_util.Guard.t ->
  ?obs:Sdft_util.Obs.t ->
  Fault_tree.t ->
  Cutset.t list
(** Shorthand for [(run tree).cutsets]. *)

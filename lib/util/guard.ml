type reason =
  | Deadline
  | Mem_limit
  | State_limit
  | Worker_crash

exception Limit_hit of reason

let reason_to_string = function
  | Deadline -> "deadline"
  | Mem_limit -> "memory limit"
  | State_limit -> "state limit"
  | Worker_crash -> "worker crash"

let pp_reason ppf r = Format.pp_print_string ppf (reason_to_string r)

let stride = 4096

type t = {
  deadline_at : float; (* absolute gettimeofday; [infinity] = no deadline *)
  mem_limit_words : int; (* [max_int] = no ceiling *)
  limited : bool;
  on_probe : (unit -> unit) option;
      (* Ran at every amortized probe (every ~[stride] calls to [check]),
         before the limit checks. Progress reporting hangs off this hook;
         it must be domain-safe when the guard is shared. *)
  active : bool; (* [limited] or an [on_probe] is attached *)
  mutable credits : int;
      (* Racy when shared across domains: a lost decrement only postpones
         one probe by a few iterations, which is harmless. *)
}

let create ?deadline ?mem_limit_mb ?on_probe () =
  let deadline_at =
    match deadline with
    | None -> infinity
    | Some s ->
      if Float.is_nan s || s < 0.0 then
        invalid_arg "Guard.create: deadline must be non-negative";
      Unix.gettimeofday () +. s
  in
  let mem_limit_words =
    match mem_limit_mb with
    | None -> max_int
    | Some mb ->
      if mb <= 0 then invalid_arg "Guard.create: mem_limit_mb must be positive";
      mb * (1024 * 1024 / (Sys.word_size / 8))
  in
  let limited = deadline <> None || mem_limit_mb <> None in
  {
    deadline_at;
    mem_limit_words;
    limited;
    on_probe;
    active = limited || on_probe <> None;
    credits = stride;
  }

let none = create ()

let unlimited t = not t.limited

let status t =
  if not t.limited then None
  else if Unix.gettimeofday () > t.deadline_at then Some Deadline
  else if
    t.mem_limit_words < max_int
    && (Gc.quick_stat ()).Gc.heap_words > t.mem_limit_words
  then Some Mem_limit
  else None

let check_now t =
  match status t with None -> () | Some r -> raise (Limit_hit r)

let check t =
  if t.active then begin
    let c = t.credits - 1 in
    t.credits <- c;
    if c <= 0 then begin
      t.credits <- stride;
      (match t.on_probe with None -> () | Some f -> f ());
      if t.limited then check_now t
    end
  end

let remaining_s t =
  if t.deadline_at = infinity then infinity
  else t.deadline_at -. Unix.gettimeofday ()

(* Minimal hand-rolled JSON emission and parsing, shared by the
   observability sinks (Metrics, Trace) and the result-manifest /
   disk-cache plumbing. Emission side: escaped strings and floats that
   degrade to null instead of producing invalid JSON. Parsing side: a
   small recursive-descent parser over the JSON our own writers emit
   (objects, arrays, strings, numbers, booleans, null) — enough to load a
   manifest back without a library dependency. *)

let add_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf v =
  if Float.is_finite v then Buffer.add_string buf (Printf.sprintf "%.17g" v)
  else Buffer.add_string buf "null"

let string_of s =
  let buf = Buffer.create (String.length s + 2) in
  add_string buf s;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing. *)

type value =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of value list
  | Object of (string * value) list

exception Parse_error of string

type state = { src : string; mutable pos : int }

let error st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> error st (Printf.sprintf "expected '%c'" c)

let parse_literal st lit v =
  let n = String.length lit in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = lit
  then begin
    st.pos <- st.pos + n;
    v
  end
  else error st (Printf.sprintf "expected %s" lit)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | None -> error st "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if st.pos + 4 > String.length st.src then
            error st "truncated \\u escape";
          let hex = String.sub st.src st.pos 4 in
          st.pos <- st.pos + 4;
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> error st "bad \\u escape"
          in
          (* Our own writer only emits \u00xx for control characters;
             encode the general case as UTF-8 so round-trips stay exact. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | c -> error st (Printf.sprintf "bad escape '\\%c'" c));
        go ())
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    match peek st with Some c when is_num_char c -> true | _ -> false
  do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some v -> v
  | None -> error st (Printf.sprintf "bad number %S" s)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '"' -> String (parse_string st)
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Object []
    end
    else begin
      let rec members acc =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members ((key, v) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((key, v) :: acc)
        | _ -> error st "expected ',' or '}'"
      in
      Object (members [])
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      Array []
    end
    else begin
      let rec elements acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elements (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> error st "expected ',' or ']'"
      in
      Array (elements [])
    end
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some ('-' | '0' .. '9') -> Number (parse_number st)
  | Some c -> error st (Printf.sprintf "unexpected character '%c'" c)

let parse s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
    else Ok v
  | exception Parse_error m -> Error m

(* Emission of parsed values, used to echo client-supplied fragments
   (e.g. request ids) back verbatim. Together with [add_float]'s
   17-significant-digit rendering, [parse] ∘ [value_to_string] is the
   identity on everything our own writers emit. *)

let rec add_value buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Number v -> add_float buf v
  | String s -> add_string buf s
  | Array vs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        add_value buf v)
      vs;
    Buffer.add_char buf ']'
  | Object fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_string buf k;
        Buffer.add_char buf ':';
        add_value buf v)
      fields;
    Buffer.add_char buf '}'

let value_to_string v =
  let buf = Buffer.create 64 in
  add_value buf v;
  Buffer.contents buf

(* Accessors: total, returning [None] on a shape mismatch, so manifest
   loaders can produce one diagnostic instead of raising mid-walk. *)

let member name = function
  | Object fields -> List.assoc_opt name fields
  | _ -> None

let to_string = function String s -> Some s | _ -> None

let to_float = function Number v -> Some v | _ -> None

let to_int = function
  | Number v when Float.is_integer v -> Some (int_of_float v)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_list = function Array l -> Some l | _ -> None

(* Minimal hand-rolled JSON emission, shared by the observability sinks
   (Metrics, Trace). Only what those need: escaped strings and floats that
   degrade to null instead of producing invalid JSON. *)

let add_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf v =
  if Float.is_finite v then Buffer.add_string buf (Printf.sprintf "%.17g" v)
  else Buffer.add_string buf "null"

let string_of s =
  let buf = Buffer.create (String.length s + 2) in
  add_string buf s;
  Buffer.contents buf

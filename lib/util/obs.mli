(** Observability contexts: one bundle of a {!Metrics} registry, a
    {!Trace} sink, a {!Failpoint} registry and an optional {!Progress}
    reporter, created per analysis and threaded through the pipeline as
    [?obs].

    The {e default-context compatibility rule}: every pipeline entry point
    defaults [?obs] to {!default}, which wraps the process-global
    [Metrics.default] / [Trace.default] / [Failpoint.default] — so
    existing call sites, the CLI flags ([--metrics], [--trace],
    [SDFT_FAILPOINTS]) and the benches behave exactly as before. Code that
    must be reentrant — concurrent analyses in one process, the future
    analysis server — calls {!create} per request and gets instruments,
    spans and failpoints that are fully isolated from every other context.

    Observability only observes: for a fixed model and options, analysis
    results are bit-identical whichever context is passed, with progress
    on or off. *)

type t = {
  metrics : Metrics.t;
  trace : Trace.t;
  failpoints : Failpoint.t;
  progress : Progress.t option;
  peak_heap : Metrics.gauge;
      (** the context's ["analysis.peak_heap_mb"] gauge, updated with
          [set_max] at every {!tick}/{!step} *)
  probe : (unit -> unit) option;
      (** extra liveness callback folded into {!on_probe} — the analysis
          server's worker-watchdog heartbeat (see {!with_on_probe}) *)
}

val default : t
(** The process-global context: default registries, no progress. *)

val create :
  ?metrics:Metrics.t ->
  ?trace:Trace.t ->
  ?failpoints:Failpoint.t ->
  ?progress:Progress.t ->
  unit ->
  t
(** A fresh, fully isolated context. Omitted components are created fresh
    (the trace sink enabled); pass a component explicitly to share or
    preconfigure it. No progress reporter unless one is given. *)

val with_progress : t -> Progress.t -> t
(** The same context with a progress reporter attached — how the CLI adds
    [--progress] to {!default}. *)

val with_on_probe : t -> (unit -> unit) -> t
(** The same context with an extra probe callback: {!on_probe} then fires
    it on every guard probe, before the progress tick. The analysis server
    uses this to feed per-worker heartbeats to its watchdog without
    touching the progress machinery. *)

(** {1 Progress driving}

    All of these are no-ops when the context has no progress reporter. *)

val tick : t -> unit
(** Heartbeat: update the peak-heap gauge ([set_max]) and rate-limited
    display. Wired into guard probes via {!on_probe}. *)

val step : t -> ?cost:float -> unit -> unit
(** One work item (cutset) finished, with its schedule-cost proxy. *)

val begin_phase :
  t ->
  string ->
  ?total:int ->
  ?cost_total:float ->
  ?skipped:int ->
  ?n_done:int ->
  unit ->
  unit
(** See {!Progress.begin_phase}; [skipped]/[n_done] let a resumed sweep
    report remaining work instead of the full total. *)

val finish_progress : t -> unit

val on_probe : t -> (unit -> unit) option
(** [Some] probe callback for [Guard.create ?on_probe] when the context has
    a progress reporter or an extra probe ({!with_on_probe}), [None]
    otherwise — so guards stay passive when nothing wants the heartbeat. *)

val heap_mb : unit -> float
(** Current major-heap size in MB ([Gc.quick_stat]). *)

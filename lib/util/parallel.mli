(** Parallel map over domains with sound exception propagation.

    [Domain.join] re-raises a worker's exception, but a naive
    spawn/join/collect loop then trips over the slots the dead worker never
    filled, masking the original failure behind an [Option.get] error. This
    module captures the {e first} worker exception, lets every domain wind
    down, and re-raises the original with its backtrace. *)

val map_init :
  domains:int -> (unit -> 'state) -> ('state -> 'a -> 'b) -> 'a array -> 'b array
(** [map_init ~domains init f work] maps [f] over [work] using [domains]
    domains in total (the calling domain participates, so [domains - 1] are
    spawned; [domains <= 1] runs sequentially). Each domain calls [init ()]
    once and passes the resulting state to every [f] call it executes; use
    this for per-domain scratch space. Work items are claimed dynamically
    from a shared counter, so the output order always matches the input
    order but the assignment of items to domains does not.

    If any [f] or [init] call raises, the first exception (by completion
    order) is re-raised in the caller after all domains have joined;
    remaining unclaimed work is skipped. *)

val map : domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~domains f work] is [map_init ~domains ignore (fun () x -> f x)
    work]. *)

val map_init_result :
  domains:int ->
  (unit -> 'state) ->
  ('state -> 'a -> 'b) ->
  'a array ->
  ('b, exn * Printexc.raw_backtrace) result array
(** Crash-containing variant of {!map_init}: an exception raised by [f] on
    one item yields [Error (exn, backtrace)] in that item's slot instead of
    aborting the whole map, so one poisoned work item degrades rather than
    killing the batch. Scheduling and output order are those of
    {!map_init}; an [init] failure is still fatal and re-raised. Each item
    also checkpoints the [parallel.worker] {!Failpoint} site before
    running. *)

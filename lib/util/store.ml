(* Append-only record log with a versioned header and CRC-per-record
   framing — the persistence substrate of the cross-run quantification
   cache.

   Layout:

     magic   "SDFTSTORE1\n"
     u32le   stamp length
     bytes   stamp (opaque version string; mismatch invalidates the file)
     record* where record = u32le payload length | u32le crc32(payload)
                          | payload bytes

   Readers walk the records sequentially and stop at the first frame that
   does not check out (short header, length past EOF, CRC mismatch): a
   truncated or torn tail yields exactly the records that were completely
   written, never garbage. The writer additionally truncates the file back
   to the last valid frame before appending, so one crash cannot grow a
   permanently skipped dead zone.

   Single-writer discipline: the first opener of a path (checked against
   both an OFD/POSIX file lock and an in-process registry, since POSIX
   locks do not conflict within one process) becomes the writer; everyone
   else degrades to a read-only snapshot of the flushed records. *)

type mode = Writer | Reader

type t = {
  path : string;
  mode : mode;
  batch : int;
  lock : Mutex.t;
  buf : Buffer.t;
  mutable pending : int;
  mutable fd : Unix.file_descr option; (* None once closed or broken *)
  mutable appended : int;
}

let magic = "SDFTSTORE1\n"

(* Standard CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320). *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

let add_u32le buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))

let read_u32le s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let frame payload =
  let buf = Buffer.create (String.length payload + 8) in
  add_u32le buf (String.length payload);
  add_u32le buf (crc32 payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

let header stamp =
  let buf = Buffer.create (String.length magic + 4 + String.length stamp) in
  Buffer.add_string buf magic;
  add_u32le buf (String.length stamp);
  Buffer.add_string buf stamp;
  Buffer.contents buf

(* Walk the record region of [contents] starting at [off]; returns the
   records in file order together with the offset just past the last valid
   frame. *)
let parse_records contents off =
  let n = String.length contents in
  let rec go acc off =
    if off + 8 > n then (List.rev acc, off)
    else
      let len = read_u32le contents off in
      let crc = read_u32le contents (off + 4) in
      if len < 0 || off + 8 + len > n then (List.rev acc, off)
      else
        let payload = String.sub contents (off + 8) len in
        if crc32 payload <> crc then (List.rev acc, off)
        else go (payload :: acc) (off + 8 + len)
  in
  go [] off

(* [header_end contents stamp] is [Some off] when the file starts with a
   valid header carrying exactly [stamp]. *)
let header_end contents stamp =
  let m = String.length magic in
  if String.length contents < m + 4 then None
  else if String.sub contents 0 m <> magic then None
  else
    let slen = read_u32le contents m in
    if slen < 0 || String.length contents < m + 4 + slen then None
    else if String.sub contents (m + 4) slen <> stamp then None
    else Some (m + 4 + slen)

(* POSIX record locks are per-process: a second [lockf] on the same file
   from the same process silently succeeds. The registry gives the
   in-process half of the single-writer guarantee. *)
let writer_registry : (string, unit) Hashtbl.t = Hashtbl.create 4
let registry_lock = Mutex.create ()

let registry_key path =
  if Filename.is_relative path then Filename.concat (Sys.getcwd ()) path
  else path

let try_register path =
  Mutex.lock registry_lock;
  let fresh = not (Hashtbl.mem writer_registry path) in
  if fresh then Hashtbl.add writer_registry path ();
  Mutex.unlock registry_lock;
  fresh

let unregister path =
  Mutex.lock registry_lock;
  Hashtbl.remove writer_registry path;
  Mutex.unlock registry_lock

let read_all fd =
  let size = (Unix.fstat fd).Unix.st_size in
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  let bytes = Bytes.create size in
  let rec fill off =
    if off < size then
      let n = Unix.read fd bytes off (size - off) in
      if n = 0 then off else fill (off + n)
    else off
  in
  let got = fill 0 in
  Bytes.sub_string bytes 0 got

let open_ ?(batch = 32) ~stamp path =
  Failpoint.hit "store.open";
  let key = registry_key path in
  let as_writer = try_register key in
  if not as_writer then begin
    (* Another handle in this process owns the file: read-only snapshot. *)
    let records =
      match Unix.openfile path [ Unix.O_RDONLY ] 0 with
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> []
      | fd ->
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            let contents = read_all fd in
            match header_end contents stamp with
            | None -> []
            | Some off -> fst (parse_records contents off))
    in
    ( {
        path;
        mode = Reader;
        batch;
        lock = Mutex.create ();
        buf = Buffer.create 0;
        pending = 0;
        fd = None;
        appended = 0;
      },
      records )
  end
  else
    match Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 with
    | exception e ->
      unregister key;
      raise e
    | fd -> (
      let locked =
        ignore (Unix.lseek fd 0 Unix.SEEK_SET);
        match Unix.lockf fd Unix.F_TLOCK 0 with
        | () -> true
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES), _, _) ->
          false
      in
      if not locked then begin
        (* Another process holds the writer lock: degrade to a read-only
           snapshot of whatever it has flushed so far. *)
        unregister key;
        let result =
          Fun.protect
            ~finally:(fun () -> Unix.close fd)
            (fun () ->
              let contents = read_all fd in
              match header_end contents stamp with
              | None -> []
              | Some off -> fst (parse_records contents off))
        in
        ( {
            path;
            mode = Reader;
            batch;
            lock = Mutex.create ();
            buf = Buffer.create 0;
            pending = 0;
            fd = None;
            appended = 0;
          },
          result )
      end
      else
        match
          let contents = read_all fd in
          let records, valid_end =
            match header_end contents stamp with
            | Some off -> parse_records contents off
            | None ->
              (* Empty file, foreign contents or a version-stamp mismatch:
                 the file is ignored and rewritten under the current
                 stamp. *)
              ([], -1)
          in
          let hdr = header stamp in
          if valid_end < 0 then begin
            Unix.ftruncate fd 0;
            ignore (Unix.lseek fd 0 Unix.SEEK_SET);
            let n = Unix.write_substring fd hdr 0 (String.length hdr) in
            if n <> String.length hdr then failwith "short header write"
          end
          else if valid_end < String.length contents then
            (* Torn tail from a crashed writer: drop it so appends start at
               a clean frame boundary. *)
            Unix.ftruncate fd valid_end;
          ignore (Unix.lseek fd 0 Unix.SEEK_END);
          records
        with
        | records ->
          ( {
              path;
              mode = Writer;
              batch;
              lock = Mutex.create ();
              buf = Buffer.create 4096;
              pending = 0;
              fd = Some fd;
              appended = 0;
            },
            records )
        | exception e ->
          unregister key;
          (try Unix.close fd with Unix.Unix_error _ -> ());
          raise e)

let mode t = t.mode

let path t = t.path

let healthy t = t.mode = Writer && t.fd <> None

let appended t = t.appended

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

let flush_locked t =
  match t.fd with
  | None -> ()
  | Some fd ->
    if Buffer.length t.buf > 0 then begin
      let data = Buffer.contents t.buf in
      Buffer.clear t.buf;
      t.pending <- 0;
      match write_all fd data with
      | () -> ()
      | exception e ->
        (* A failed write leaves the fd position unknown; stop using the
           file rather than risk interleaving garbage. The already-parsed
           in-memory state is unaffected. *)
        t.fd <- None;
        (try Unix.close fd with Unix.Unix_error _ -> ());
        unregister (registry_key t.path);
        raise e
    end

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let append t payload =
  Failpoint.hit "store.append";
  locked t (fun () ->
      match t.fd with
      | None -> false
      | Some _ ->
        Buffer.add_string t.buf (frame payload);
        t.pending <- t.pending + 1;
        t.appended <- t.appended + 1;
        if t.pending >= t.batch then flush_locked t;
        true)

let flush t = locked t (fun () -> flush_locked t)

let close t =
  locked t (fun () ->
      match t.fd with
      | None -> ()
      | Some fd ->
        flush_locked t;
        (match t.fd with
        | None -> () (* flush failure already tore the handle down *)
        | Some _ ->
          t.fd <- None;
          (try Unix.close fd with Unix.Unix_error _ -> ());
          unregister (registry_key t.path)))

(** Live, rate-limited progress reporting for long analyses.

    A reporter renders a single status line — phase, items done/total,
    percent complete, an ETA extrapolated from the declared work costs,
    elapsed time, and peak heap — and emits it at most once per interval
    through an injectable sink (a carriage-return-overwritten stderr line
    by default; tests inject a capturing function).

    The reporter is driven from two places: {!step}, called once per
    completed work item (e.g. per quantified cutset), and {!tick}, wired
    into the {!Guard.check} amortized probe so even a single long-running
    item keeps the display alive. Both are cheap, domain-safe (all state is
    atomics) and purely observational: analysis results are bit-identical
    with progress on or off. *)

type t

val create :
  ?interval:float ->
  ?emit:(string -> unit) ->
  ?emit_end:(unit -> unit) ->
  unit ->
  t
(** [create ()] starts the elapsed-time clock. [interval] (default 0.2 s)
    rate-limits emission. [emit] receives each rendered status line
    (default: overwrite one stderr line); [emit_end] is called once by
    {!finish} if anything was emitted (default: newline to stderr, leaving
    the last status visible). *)

val begin_phase : t -> string -> ?total:int -> ?cost_total:float -> unit -> unit
(** Enter a named phase and reset the item counters. [total] is the number
    of work items (0 = unknown: only phase, elapsed and heap are shown);
    [cost_total] the summed cost proxies of all items — when given, ETA is
    based on completed cost rather than item count, which is honest under
    the cost-descending schedule (expensive items run first). Emits
    immediately. *)

val step : t -> ?cost:float -> unit -> unit
(** One work item finished, with its cost proxy. May emit (rate-limited). *)

val tick : t -> heap_mb:float -> unit
(** Heartbeat from a guard probe: record the heap high-water mark for
    display and maybe emit (rate-limited). *)

val finish : t -> unit
(** Emit one final line and terminate the display (no-op when nothing was
    ever emitted). *)

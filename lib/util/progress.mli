(** Live, rate-limited progress reporting for long analyses.

    A reporter renders a single status line — phase, items done/total,
    percent complete, an ETA extrapolated from the declared work costs,
    elapsed time, and peak heap — and emits it at most once per interval
    through an injectable sink (stderr by default; tests inject a
    capturing function). The default sink adapts to its destination: on a
    TTY it overwrites one line with a carriage return; when stderr is a
    pipe or file it falls back to plain newline-terminated updates, so
    captured logs are never garbled by CR framing.

    The reporter is driven from two places: {!step}, called once per
    completed work item (e.g. per quantified cutset), and {!tick}, wired
    into the {!Guard.check} amortized probe so even a single long-running
    item keeps the display alive. Both are cheap, domain-safe (all state is
    atomics) and purely observational: analysis results are bit-identical
    with progress on or off. *)

type t

val create :
  ?tty:bool ->
  ?interval:float ->
  ?emit:(string -> unit) ->
  ?emit_end:(unit -> unit) ->
  unit ->
  t
(** [create ()] starts the elapsed-time clock. [tty] selects the default
    sink's framing (see {!rendered}) and defaults to
    [Unix.isatty Unix.stderr]. [interval] rate-limits emission; its
    default is 0.2 s on a TTY and 1 s otherwise (appended lines are
    costlier to a log than overwritten ones). [emit] receives each
    {e unframed} status line (default: write [rendered ~tty line] to
    stderr); [emit_end] is called once by {!finish} if anything was
    emitted (default on a TTY: newline to stderr, leaving the last status
    visible; plain mode: nothing, its lines are already terminated). *)

val rendered : tty:bool -> string -> string
(** How the default sink frames one status line: [tty:true] prefixes a
    carriage return and pads to a fixed width so successive lines
    overwrite each other; [tty:false] is the line plus a newline, safe for
    pipes and captured logs. Exposed so tests can pin both modes. *)

val begin_phase :
  t ->
  string ->
  ?total:int ->
  ?cost_total:float ->
  ?skipped:int ->
  ?n_done:int ->
  unit ->
  unit
(** Enter a named phase and reset the item counters. [total] is the number
    of work items (0 = unknown: only phase, elapsed and heap are shown);
    [cost_total] the summed cost proxies of all items — when given, ETA is
    based on completed cost rather than item count, which is honest under
    the cost-descending schedule (expensive items run first). [skipped]
    (default 0) is work already certified by a checkpoint and excluded
    from [total]: a resumed sweep reports {e remaining} work, with the
    skipped count shown separately, so the ETA never prices items that
    will never run. [n_done] (default 0) pre-positions the done counter,
    for phases re-entered mid-way (the sweep loop re-asserts its phase
    between points). Emits immediately. *)

val step : t -> ?cost:float -> unit -> unit
(** One work item finished, with its cost proxy. May emit (rate-limited). *)

val tick : t -> heap_mb:float -> unit
(** Heartbeat from a guard probe: record the heap high-water mark for
    display and maybe emit (rate-limited). *)

val finish : t -> unit
(** Emit one final line and terminate the display (no-op when nothing was
    ever emitted). *)

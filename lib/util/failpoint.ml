exception Injected of string

type action =
  | Raise
  | Oom
  | Limit of Guard.reason
  | Delay of float

type trigger =
  | Always
  | Nth of int
  | First of int
  | Prob of float * int

type site = {
  action : action;
  trigger : trigger;
  hits : int Atomic.t;
}

(* [armed] gates the fast path. Each registry is an isolated set of sites;
   the default registry additionally picks up SDFT_FAILPOINTS on the first
   hit of the process, so env-driven injection works in any binary (tests
   included) without explicit initialisation. Fresh registries never read
   the environment: an injection configured by the operator targets the
   process-level run, not every concurrent analysis context. *)
type t = {
  armed : bool Atomic.t;
  lock : Mutex.t;
  table : (string, site) Hashtbl.t;
}

let create () =
  { armed = Atomic.make false; lock = Mutex.create (); table = Hashtbl.create 8 }

let default = create ()

let env_read = Atomic.make false

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let set_in t name ?(trigger = Always) action =
  (match trigger with
  | Nth n when n <= 0 -> invalid_arg "Failpoint.set: nth trigger must be >= 1"
  | First n when n <= 0 ->
    invalid_arg "Failpoint.set: first trigger must be >= 1"
  | Prob (p, _) when Float.is_nan p || p < 0.0 || p > 1.0 ->
    invalid_arg "Failpoint.set: probability must be in [0,1]"
  | _ -> ());
  locked t (fun () ->
      Hashtbl.replace t.table name { action; trigger; hits = Atomic.make 0 };
      Atomic.set t.armed true)

let set name ?trigger action = set_in default name ?trigger action

let clear_in t name =
  locked t (fun () ->
      Hashtbl.remove t.table name;
      if Hashtbl.length t.table = 0 then Atomic.set t.armed false)

let clear name = clear_in default name

let clear_all_in t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      Atomic.set t.armed false)

let clear_all () = clear_all_in default

let hit_count_in t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some s -> Atomic.get s.hits
      | None -> 0)

let hit_count name = hit_count_in default name

(* Stateless per-hit decision: mixing the seed with the hit index through
   splitmix64 gives every hit its own draw no matter how hits interleave
   across domains, so a (seed, index) pair always decides the same way. *)
let prob_fires p seed index =
  let rng = Rng.create (seed lxor (index * 0x2545F491)) in
  Rng.float rng < p

let fire name s =
  let index = Atomic.fetch_and_add s.hits 1 + 1 in
  let fires =
    match s.trigger with
    | Always -> true
    | Nth n -> index = n
    | First n -> index <= n
    | Prob (p, seed) -> prob_fires p seed index
  in
  if fires then
    match s.action with
    | Raise -> raise (Injected name)
    | Oom -> raise Out_of_memory
    | Limit r -> raise (Guard.Limit_hit r)
    | Delay seconds -> if seconds > 0.0 then Unix.sleepf seconds

(* Specification parsing: SITE=ACTION[@TRIGGER], comma-separated. *)

let bad entry fmt =
  Printf.ksprintf
    (fun m -> failwith (Printf.sprintf "failpoint %S: %s" entry m))
    fmt

let parse_float entry what s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> bad entry "bad %s %S" what s

let parse_int entry what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> bad entry "bad %s %S" what s

let parse_action entry s =
  match String.split_on_char ':' s with
  | [ "raise" ] -> Raise
  | [ "oom" ] -> Oom
  | [ "deadline" ] -> Limit Guard.Deadline
  | [ "mem" ] -> Limit Guard.Mem_limit
  | [ "state" ] -> Limit Guard.State_limit
  | [ "crash" ] -> Limit Guard.Worker_crash
  | [ "delay"; seconds ] -> Delay (parse_float entry "delay" seconds)
  | _ ->
    bad entry
      "unknown action %S (expected raise, oom, deadline, mem, state, crash \
       or delay:SECONDS)"
      s

let parse_trigger entry s =
  match String.split_on_char ':' s with
  | [ "always" ] -> Always
  | [ "nth"; n ] ->
    let n = parse_int entry "nth count" n in
    if n <= 0 then bad entry "nth count must be >= 1";
    Nth n
  | [ "first"; n ] ->
    let n = parse_int entry "first count" n in
    if n <= 0 then bad entry "first count must be >= 1";
    First n
  | [ "prob"; p; seed ] ->
    let p = parse_float entry "probability" p in
    if Float.is_nan p || p < 0.0 || p > 1.0 then
      bad entry "probability must be in [0,1]";
    Prob (p, parse_int entry "seed" seed)
  | _ ->
    bad entry
      "unknown trigger %S (expected always, nth:N, first:N or prob:P:SEED)" s

let parse_entry t entry =
  match String.index_opt entry '=' with
  | None -> bad entry "missing '=' (expected SITE=ACTION[@TRIGGER])"
  | Some i ->
    let name = String.sub entry 0 i in
    let spec = String.sub entry (i + 1) (String.length entry - i - 1) in
    if name = "" then bad entry "empty site name";
    let action, trigger =
      match String.index_opt spec '@' with
      | None -> (parse_action entry spec, Always)
      | Some j ->
        ( parse_action entry (String.sub spec 0 j),
          parse_trigger entry
            (String.sub spec (j + 1) (String.length spec - j - 1)) )
    in
    set_in t name ~trigger action

let configure_string_in t s =
  List.iter
    (fun entry ->
      let entry = String.trim entry in
      if entry <> "" then parse_entry t entry)
    (String.split_on_char ',' s)

let configure_string s = configure_string_in default s

let load_env () =
  Atomic.set env_read true;
  match Sys.getenv_opt "SDFT_FAILPOINTS" with
  | Some spec when String.trim spec <> "" -> configure_string_in default spec
  | Some _ | None -> ()

let hit_in t name =
  if t == default && not (Atomic.get env_read) then load_env ();
  if Atomic.get t.armed then begin
    let site = locked t (fun () -> Hashtbl.find_opt t.table name) in
    match site with None -> () | Some s -> fire name s
  end

let hit name = hit_in default name

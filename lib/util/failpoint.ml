exception Injected of string

type action =
  | Raise
  | Oom
  | Limit of Guard.reason
  | Delay of float

type trigger =
  | Always
  | Nth of int
  | Prob of float * int

type site = {
  action : action;
  trigger : trigger;
  hits : int Atomic.t;
}

(* [armed] gates the fast path; [env_read] makes the first hit of the
   process pick up SDFT_FAILPOINTS so env-driven injection works in any
   binary (tests included) without explicit initialisation. *)
let armed = Atomic.make false
let env_read = Atomic.make false
let lock = Mutex.create ()
let table : (string, site) Hashtbl.t = Hashtbl.create 8

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let set name ?(trigger = Always) action =
  (match trigger with
  | Nth n when n <= 0 -> invalid_arg "Failpoint.set: nth trigger must be >= 1"
  | Prob (p, _) when Float.is_nan p || p < 0.0 || p > 1.0 ->
    invalid_arg "Failpoint.set: probability must be in [0,1]"
  | _ -> ());
  locked (fun () ->
      Hashtbl.replace table name { action; trigger; hits = Atomic.make 0 };
      Atomic.set armed true)

let clear name =
  locked (fun () ->
      Hashtbl.remove table name;
      if Hashtbl.length table = 0 then Atomic.set armed false)

let clear_all () =
  locked (fun () ->
      Hashtbl.reset table;
      Atomic.set armed false)

let hit_count name =
  locked (fun () ->
      match Hashtbl.find_opt table name with
      | Some s -> Atomic.get s.hits
      | None -> 0)

(* Stateless per-hit decision: mixing the seed with the hit index through
   splitmix64 gives every hit its own draw no matter how hits interleave
   across domains, so a (seed, index) pair always decides the same way. *)
let prob_fires p seed index =
  let rng = Rng.create (seed lxor (index * 0x2545F491)) in
  Rng.float rng < p

let fire name s =
  let index = Atomic.fetch_and_add s.hits 1 + 1 in
  let fires =
    match s.trigger with
    | Always -> true
    | Nth n -> index = n
    | Prob (p, seed) -> prob_fires p seed index
  in
  if fires then
    match s.action with
    | Raise -> raise (Injected name)
    | Oom -> raise Out_of_memory
    | Limit r -> raise (Guard.Limit_hit r)
    | Delay seconds -> if seconds > 0.0 then Unix.sleepf seconds

(* Specification parsing: SITE=ACTION[@TRIGGER], comma-separated. *)

let bad entry fmt =
  Printf.ksprintf
    (fun m -> failwith (Printf.sprintf "failpoint %S: %s" entry m))
    fmt

let parse_float entry what s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> bad entry "bad %s %S" what s

let parse_int entry what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> bad entry "bad %s %S" what s

let parse_action entry s =
  match String.split_on_char ':' s with
  | [ "raise" ] -> Raise
  | [ "oom" ] -> Oom
  | [ "deadline" ] -> Limit Guard.Deadline
  | [ "mem" ] -> Limit Guard.Mem_limit
  | [ "state" ] -> Limit Guard.State_limit
  | [ "crash" ] -> Limit Guard.Worker_crash
  | [ "delay"; seconds ] -> Delay (parse_float entry "delay" seconds)
  | _ ->
    bad entry
      "unknown action %S (expected raise, oom, deadline, mem, state, crash \
       or delay:SECONDS)"
      s

let parse_trigger entry s =
  match String.split_on_char ':' s with
  | [ "always" ] -> Always
  | [ "nth"; n ] ->
    let n = parse_int entry "nth count" n in
    if n <= 0 then bad entry "nth count must be >= 1";
    Nth n
  | [ "prob"; p; seed ] ->
    let p = parse_float entry "probability" p in
    if Float.is_nan p || p < 0.0 || p > 1.0 then
      bad entry "probability must be in [0,1]";
    Prob (p, parse_int entry "seed" seed)
  | _ ->
    bad entry "unknown trigger %S (expected always, nth:N or prob:P:SEED)" s

let parse_entry entry =
  match String.index_opt entry '=' with
  | None -> bad entry "missing '=' (expected SITE=ACTION[@TRIGGER])"
  | Some i ->
    let name = String.sub entry 0 i in
    let spec = String.sub entry (i + 1) (String.length entry - i - 1) in
    if name = "" then bad entry "empty site name";
    let action, trigger =
      match String.index_opt spec '@' with
      | None -> (parse_action entry spec, Always)
      | Some j ->
        ( parse_action entry (String.sub spec 0 j),
          parse_trigger entry
            (String.sub spec (j + 1) (String.length spec - j - 1)) )
    in
    set name ~trigger action

let configure_string s =
  List.iter
    (fun entry ->
      let entry = String.trim entry in
      if entry <> "" then parse_entry entry)
    (String.split_on_char ',' s)

let load_env () =
  Atomic.set env_read true;
  match Sys.getenv_opt "SDFT_FAILPOINTS" with
  | Some spec when String.trim spec <> "" -> configure_string spec
  | Some _ | None -> ()

let hit name =
  if not (Atomic.get env_read) then load_env ();
  if Atomic.get armed then begin
    let site = locked (fun () -> Hashtbl.find_opt table name) in
    match site with None -> () | Some s -> fire name s
  end

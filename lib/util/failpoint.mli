(** Deterministic fault-injection sites for robustness testing.

    Library code declares named sites by calling {!hit} at interesting
    points (the toolkit uses [mocus.expand], [product.explore],
    [transient.step], [cache.lookup] and [parallel.worker]). When no
    failpoint is armed — the production default — a hit is two atomic loads.
    Tests (via the API) or operators (via the [SDFT_FAILPOINTS] environment
    variable) arm sites with an action and a deterministic trigger, which
    lets every degradation path of the analysis be exercised on demand:
    injected exceptions, simulated [Out_of_memory], simulated resource
    limits, or plain delays.

    {2 Specification syntax}

    [SDFT_FAILPOINTS] is a comma-separated list of [SITE=SPEC] entries;
    {!configure_string} accepts the same syntax. A [SPEC] is
    [ACTION[@TRIGGER]]:

    - actions: [raise] (raise {!Injected}), [oom] (raise [Out_of_memory]),
      [deadline] / [mem] / [state] / [crash] (raise the corresponding
      {!Guard.Limit_hit}), [delay:SECONDS] (sleep, then continue);
    - triggers: [always] (default), [nth:N] (fire on exactly the [N]-th hit
      of the site, 1-based), [prob:P:SEED] (fire each hit independently with
      probability [P], decided by a splitmix64 hash of [SEED] and the hit
      index — deterministic for a given seed and hit numbering).

    Example:
    [SDFT_FAILPOINTS="parallel.worker=raise@nth:3,transient.step=delay:0.001@prob:0.1:42"].

    The registry is global and domain-safe; hit indices are assigned with an
    atomic counter per site, so under parallelism the {e set} of firing hit
    indices is deterministic even though their assignment to work items can
    race. *)

exception Injected of string
(** Raised by the [raise] action; the payload is the site name. *)

type action =
  | Raise  (** raise [Injected site] *)
  | Oom  (** raise [Out_of_memory] *)
  | Limit of Guard.reason  (** raise [Guard.Limit_hit reason] *)
  | Delay of float  (** sleep this many seconds, then continue *)

type trigger =
  | Always
  | Nth of int  (** fire on exactly the n-th hit (1-based) *)
  | Prob of float * int  (** probability, seed *)

val hit : string -> unit
(** Checkpoint a site. No-op (two atomic loads) unless the site is armed.
    The first hit in a process also arms any sites configured through
    [SDFT_FAILPOINTS]. *)

val set : string -> ?trigger:trigger -> action -> unit
(** Arm a site (replacing any previous arming and resetting its hit
    counter). [trigger] defaults to [Always]. *)

val clear : string -> unit
(** Disarm one site. *)

val clear_all : unit -> unit
(** Disarm every site (including environment-configured ones). *)

val hit_count : string -> int
(** Hits recorded at an armed site so far; 0 when not armed. *)

val configure_string : string -> unit
(** Parse and arm a comma-separated [SITE=SPEC] list (see above).

    @raise Failure on a malformed specification, naming the entry. *)

val load_env : unit -> unit
(** Arm the sites described by [SDFT_FAILPOINTS], if set. Called implicitly
    by the first {!hit}; explicit calls re-read the variable. *)

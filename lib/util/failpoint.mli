(** Deterministic fault-injection sites for robustness testing.

    Library code declares named sites by calling {!hit} (or {!hit_in} with
    an explicit registry) at interesting points (the toolkit uses
    [mocus.expand], [product.explore], [transient.step], [cache.lookup] and
    [parallel.worker]). When no failpoint is armed — the production default
    — a hit is two atomic loads. Tests (via the API) or operators (via the
    [SDFT_FAILPOINTS] environment variable) arm sites with an action and a
    deterministic trigger, which lets every degradation path of the
    analysis be exercised on demand: injected exceptions, simulated
    [Out_of_memory], simulated resource limits, or plain delays.

    Sites live in a {e registry} ({!t}). The process-global {!default}
    registry backs every call without an explicit registry and is the only
    one that reads [SDFT_FAILPOINTS]; fresh registries (one per
    {!Obs.create} context) start empty and are armed exclusively through
    the API, so an injection armed for one analysis can never fire inside a
    concurrent one.

    {2 Specification syntax}

    [SDFT_FAILPOINTS] is a comma-separated list of [SITE=SPEC] entries;
    {!configure_string} accepts the same syntax. A [SPEC] is
    [ACTION[@TRIGGER]]:

    - actions: [raise] (raise {!Injected}), [oom] (raise [Out_of_memory]),
      [deadline] / [mem] / [state] / [crash] (raise the corresponding
      {!Guard.Limit_hit}), [delay:SECONDS] (sleep, then continue);
    - triggers: [always] (default), [nth:N] (fire on exactly the [N]-th hit
      of the site, 1-based), [first:N] (fire on every hit up to and
      including the [N]-th — a deterministic transient fault that heals
      itself, made for exercising recovery paths), [prob:P:SEED] (fire each
      hit independently with probability [P], decided by a splitmix64 hash
      of [SEED] and the hit index — deterministic for a given seed and hit
      numbering).

    Example:
    [SDFT_FAILPOINTS="parallel.worker=raise@nth:3,transient.step=delay:0.001@prob:0.1:42"].

    Registries are domain-safe; hit indices are assigned with an atomic
    counter per site, so under parallelism the {e set} of firing hit
    indices is deterministic even though their assignment to work items can
    race. *)

exception Injected of string
(** Raised by the [raise] action; the payload is the site name. *)

type action =
  | Raise  (** raise [Injected site] *)
  | Oom  (** raise [Out_of_memory] *)
  | Limit of Guard.reason  (** raise [Guard.Limit_hit reason] *)
  | Delay of float  (** sleep this many seconds, then continue *)

type trigger =
  | Always
  | Nth of int  (** fire on exactly the n-th hit (1-based) *)
  | First of int  (** fire on hits 1..n, then heal *)
  | Prob of float * int  (** probability, seed *)

(** {1 Registries} *)

type t
(** A registry of armed sites. *)

val create : unit -> t
(** A fresh registry with no armed sites, isolated from every other. Never
    reads [SDFT_FAILPOINTS]. *)

val default : t
(** The process-global registry behind the registry-less functions. *)

(** {1 Hitting sites} *)

val hit : string -> unit
(** Checkpoint a site against {!default}. No-op (two atomic loads) unless
    the site is armed. The first hit in a process also arms any sites
    configured through [SDFT_FAILPOINTS]. *)

val hit_in : t -> string -> unit
(** Checkpoint a site against an explicit registry. Hot loops bind the
    registry once outside the loop and call this — same cost as {!hit}. *)

(** {1 Arming} *)

val set : string -> ?trigger:trigger -> action -> unit
(** Arm a site (replacing any previous arming and resetting its hit
    counter). [trigger] defaults to [Always]. *)

val set_in : t -> string -> ?trigger:trigger -> action -> unit

val clear : string -> unit
(** Disarm one site. *)

val clear_in : t -> string -> unit

val clear_all : unit -> unit
(** Disarm every site (including environment-configured ones). *)

val clear_all_in : t -> unit

val hit_count : string -> int
(** Hits recorded at an armed site so far; 0 when not armed. *)

val hit_count_in : t -> string -> int

val configure_string : string -> unit
(** Parse and arm a comma-separated [SITE=SPEC] list (see above) on
    {!default}.

    @raise Failure on a malformed specification, naming the entry. *)

val configure_string_in : t -> string -> unit

val load_env : unit -> unit
(** Arm the sites described by [SDFT_FAILPOINTS], if set, on {!default}.
    Called implicitly by the first {!hit}; explicit calls re-read the
    variable. *)

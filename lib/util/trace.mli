(** Hierarchical tracing: nested spans with typed attributes and point
    events, buffered per domain, exported as JSONL or Chrome trace-event
    JSON (loadable in Perfetto / [chrome://tracing]).

    Complements {!Metrics}: metrics aggregate (one number per counter for a
    whole run), traces keep every interval with its start time, duration,
    nesting depth and domain — "which cutset cost the time" instead of "how
    much time cutsets cost in total".

    Events are recorded into a {e sink} ({!t}). The process-global
    {!default} sink keeps the historical behavior: disabled until
    {!set_enabled}, shared by every call that does not pass [?sink].
    Observability contexts ({!Obs}) carry their own sink, so concurrent
    analyses in one process never interleave events. The disabled path is
    one atomic load per call — no time source is read, nothing allocates —
    so instrumentation can stay in hot library code permanently. Analysis
    results are bit-identical with tracing enabled or disabled: tracing
    only observes.

    Each domain writes to its own buffer within a sink (the writing side is
    only touched by the owning domain, never locked). Buffers outlive their
    domain, so spans recorded by {!Parallel.map_init} workers are merged
    into the export after the join. {!snapshot}, {!reset} and the exporters
    are meant to run while the traced workload is quiescent. *)

type value =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type kind =
  | Span
  | Instant

type event = {
  ev_name : string;
  ev_kind : kind;
  ev_start : float;  (** Unix epoch seconds *)
  ev_dur : float;  (** seconds; [0.] for instants *)
  ev_depth : int;  (** nesting depth at the time of recording *)
  ev_domain : int;  (** per-buffer id, stable across the export *)
  ev_attrs : (string * value) list;
}

(** {1 Sinks} *)

type t
(** A trace sink: an isolated set of per-domain buffers plus an enable
    flag. *)

val default : t
(** The process-global sink, used by every call without [?sink]. Starts
    disabled. *)

val create : ?enabled:bool -> unit -> t
(** A fresh sink, isolated from every other. Enabled by default — creating
    a sink is the intent to record into it. *)

(** {1 Enabling} *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Switch for the {!default} sink. Flip it before the traced workload
    starts; flipping it while spans are open is safe but those spans may be
    dropped. *)

val enabled_in : t -> bool

val set_enabled_in : t -> bool -> unit

(** {1 Recording} *)

val with_span :
  ?sink:t -> ?attrs:(string * value) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span. The span closes (and is
    recorded) whether [f] returns or raises. [attrs] are attached at close
    time, after any {!add_attr} made during the span. *)

val add_attr : ?sink:t -> string -> value -> unit
(** Attach an attribute to the innermost open span of the calling domain;
    no-op when the sink is disabled or no span is open. *)

val instant : ?sink:t -> ?attrs:(string * value) list -> string -> unit
(** Record a point event at the current time and depth. *)

(** {1 Export} *)

val snapshot : unit -> event list
(** Every recorded event from every domain buffer of the {!default} sink,
    sorted by start time. *)

val snapshot_in : t -> event list

val aggregate : unit -> (string * (int * float)) list
(** Spans grouped by name as [(name, (count, total seconds))], sorted by
    decreasing total time with a stable tie-break on name — the "top spans"
    view. For a given set of events the result is deterministic regardless
    of which domain buffers recorded them: per-name durations are summed in
    a canonical order (start time, duration, domain) with Kahan
    compensation. *)

val aggregate_in : t -> (string * (int * float)) list

val reset : unit -> unit
(** Drop all recorded events of the {!default} sink (buffers stay
    registered). *)

val reset_in : t -> unit

val to_jsonl : unit -> string
(** One JSON object per line:
    [{"name":..,"kind":"span"|"instant","ts":..,"dur":..,"depth":..,
    "domain":..,"args":{..}}]. *)

val to_jsonl_in : t -> string

val to_chrome : unit -> string
(** Chrome trace-event JSON array: spans as complete ("X") events with
    microsecond timestamps rebased to the earliest event, one [tid] lane per
    domain, instants as thread-scoped "i" events. *)

val to_chrome_in : t -> string

val write_file : string -> unit
(** Write the current snapshot to [path]: Chrome trace-event JSON when the
    path ends in [.json], JSONL otherwise. The write is atomic
    ({!Atomic_io.write_file}), so a kill mid-dump never leaves a truncated
    file. *)

val write_file_in : t -> string -> unit

(** Hierarchical tracing: nested spans with typed attributes and point
    events, buffered per domain, exported as JSONL or Chrome trace-event
    JSON (loadable in Perfetto / [chrome://tracing]).

    Complements {!Metrics}: metrics aggregate (one number per counter for a
    whole run), traces keep every interval with its start time, duration,
    nesting depth and domain — "which cutset cost the time" instead of "how
    much time cutsets cost in total".

    Tracing is {e disabled} by default and the disabled path is one atomic
    load per call — no time source is read, nothing allocates — so
    instrumentation can stay in hot library code permanently. Analysis
    results are bit-identical with tracing enabled or disabled: tracing only
    observes.

    Each domain writes to its own buffer (reached through domain-local
    storage, never locked on the hot path). Buffers are registered globally
    at creation and outlive their domain, so spans recorded by
    {!Parallel.map_init} workers are merged into the export after the join.
    {!snapshot}, {!reset} and the exporters are meant to run while the
    traced workload is quiescent. *)

type value =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type kind =
  | Span
  | Instant

type event = {
  ev_name : string;
  ev_kind : kind;
  ev_start : float;  (** Unix epoch seconds *)
  ev_dur : float;  (** seconds; [0.] for instants *)
  ev_depth : int;  (** nesting depth at the time of recording *)
  ev_domain : int;  (** per-buffer id, stable across the export *)
  ev_attrs : (string * value) list;
}

(** {1 Enabling} *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Global switch. Flip it before the traced workload starts; flipping it
    while spans are open is safe but those spans may be dropped. *)

(** {1 Recording} *)

val with_span : ?attrs:(string * value) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span. The span closes (and is
    recorded) whether [f] returns or raises. [attrs] are attached at close
    time, after any {!add_attr} made during the span. *)

val add_attr : string -> value -> unit
(** Attach an attribute to the innermost open span of the calling domain;
    no-op when tracing is disabled or no span is open. *)

val instant : ?attrs:(string * value) list -> string -> unit
(** Record a point event at the current time and depth. *)

(** {1 Export} *)

val snapshot : unit -> event list
(** Every recorded event from every domain buffer, sorted by start time. *)

val aggregate : unit -> (string * (int * float)) list
(** Spans grouped by name as [(name, (count, total seconds))], sorted by
    decreasing total time — the "top spans" view. *)

val reset : unit -> unit
(** Drop all recorded events (buffers stay registered). *)

val to_jsonl : unit -> string
(** One JSON object per line:
    [{"name":..,"kind":"span"|"instant","ts":..,"dur":..,"depth":..,
    "domain":..,"args":{..}}]. *)

val to_chrome : unit -> string
(** Chrome trace-event JSON array: spans as complete ("X") events with
    microsecond timestamps rebased to the earliest event, one [tid] lane per
    domain, instants as thread-scoped "i" events. *)

val write_file : string -> unit
(** Write the current snapshot to [path]: Chrome trace-event JSON when the
    path ends in [.json], JSONL otherwise. *)

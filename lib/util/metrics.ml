type counter = int Atomic.t

type gauge = float Atomic.t

type span = {
  total : float Atomic.t;
  count : int Atomic.t;
}

(* Histograms use one fixed, process-wide bucket scheme: log-spaced
   boundaries, four buckets per decade, covering 1e-9 .. ~5.6e8 with one
   overflow bucket. Fixing the boundaries (instead of adapting them to the
   data) makes merges across domains and across snapshots exact: bucket i
   always means the same interval, so merging is integer addition. *)
let n_buckets = 73

let bounds = Array.init (n_buckets - 1) (fun i -> 10.0 ** (float_of_int (i - 36) /. 4.0))

let bucket_le i = if i >= n_buckets - 1 then infinity else bounds.(i)

(* Smallest i with v <= bounds.(i); the last bucket catches everything
   above the largest boundary. NaN is counted as 0 so a bad observation
   can never corrupt the count invariants. *)
let bucket_index v =
  let v = if Float.is_nan v then 0.0 else v in
  if v <= bounds.(0) then 0
  else if v > bounds.(n_buckets - 2) then n_buckets - 1
  else begin
    let lo = ref 0 and hi = ref (n_buckets - 2) in
    while !hi > !lo do
      let mid = (!lo + !hi) / 2 in
      if v <= bounds.(mid) then hi := mid else lo := mid + 1
    done;
    !hi
  end

type histogram = {
  h_counts : int Atomic.t array; (* length [n_buckets], not cumulative *)
  h_sum : float Atomic.t;
}

(* The registry maps kind-prefixed names to instruments; the lock guards
   registration only — updates go straight to the atomics. *)
type instrument =
  | Counter of counter
  | Gauge of gauge
  | Span of span
  | Histogram of histogram

type t = {
  tbl : (string, instrument) Hashtbl.t;
  lock : Mutex.t;
}

let create () = { tbl = Hashtbl.create 64; lock = Mutex.create () }

let default = create ()

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let register t key make =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some i -> i
      | None ->
        let i = make () in
        Hashtbl.add t.tbl key i;
        i)

let counter_in t name =
  match register t ("c:" ^ name) (fun () -> Counter (Atomic.make 0)) with
  | Counter c -> c
  | Gauge _ | Span _ | Histogram _ -> assert false (* "c:" keys only hold counters *)

let gauge_in t name =
  match register t ("g:" ^ name) (fun () -> Gauge (Atomic.make 0.0)) with
  | Gauge g -> g
  | Counter _ | Span _ | Histogram _ -> assert false

(* A gauge_max is an ordinary gauge by representation; the distinction is
   the update discipline ({!set_max}), which callers opt into. *)
let gauge_max_in = gauge_in

let span_in t name =
  match
    register t ("s:" ^ name) (fun () ->
        Span { total = Atomic.make 0.0; count = Atomic.make 0 })
  with
  | Span s -> s
  | Counter _ | Gauge _ | Histogram _ -> assert false

let histogram_in t name =
  match
    register t ("h:" ^ name) (fun () ->
        Histogram
          {
            h_counts = Array.init n_buckets (fun _ -> Atomic.make 0);
            h_sum = Atomic.make 0.0;
          })
  with
  | Histogram h -> h
  | Counter _ | Gauge _ | Span _ -> assert false

let counter name = counter_in default name

let gauge name = gauge_in default name

let gauge_max name = gauge_max_in default name

let span name = span_in default name

let histogram name = histogram_in default name

let incr c = ignore (Atomic.fetch_and_add c 1)

let add c n = ignore (Atomic.fetch_and_add c n)

let set g v = Atomic.set g v

(* Boxed-float CAS loop: [compare_and_set] compares physically, and the
   value read by [get] is the stored box, so the retry is sound. *)
let rec atomic_add_float a x =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. x)) then atomic_add_float a x

(* Monotone-max via CAS: under parallel domains, concurrent [set_max]
   calls converge on the maximum no matter how they interleave — unlike
   [set], which keeps whichever write happened to land last. *)
let rec set_max g v =
  let old = Atomic.get g in
  if v > old && not (Atomic.compare_and_set g old v) then set_max g v

let record s seconds =
  atomic_add_float s.total seconds;
  ignore (Atomic.fetch_and_add s.count 1)

let time s f =
  let t0 = Timer.start () in
  Fun.protect ~finally:(fun () -> record s (Timer.elapsed_s t0)) f

let observe h v =
  ignore (Atomic.fetch_and_add h.h_counts.(bucket_index v) 1);
  atomic_add_float h.h_sum v

let counter_value c = Atomic.get c

let gauge_value g = Atomic.get g

let span_seconds s = Atomic.get s.total

let span_count s = Atomic.get s.count

(* Pure histogram values — the same representation backs live snapshots
   and the property tests for merge laws. *)
type hist = {
  buckets : int array; (* length [n_buckets], not cumulative *)
  sum : float;
  count : int;
}

let hist_empty =
  { buckets = Array.make n_buckets 0; sum = 0.0; count = 0 }

let hist_of_values vs =
  let buckets = Array.make n_buckets 0 in
  let sum = ref 0.0 and count = ref 0 in
  Array.iter
    (fun v ->
      let i = bucket_index v in
      buckets.(i) <- buckets.(i) + 1;
      sum := !sum +. v;
      count := !count + 1)
    vs;
  { buckets; sum = !sum; count = !count }

let hist_merge a b =
  {
    buckets = Array.init n_buckets (fun i -> a.buckets.(i) + b.buckets.(i));
    sum = a.sum +. b.sum;
    count = a.count + b.count;
  }

(* Quantile as the upper boundary of the bucket holding the q-th ranked
   observation — the standard fixed-bucket estimate (what a Prometheus
   histogram_quantile reports, up to interpolation). [nan] on empty. *)
let hist_quantile h q =
  if h.count = 0 then nan
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = Float.max 1.0 (Float.round (q *. float_of_int h.count)) in
    let rank = int_of_float rank in
    let rec walk i acc =
      if i >= n_buckets - 1 then bucket_le i
      else
        let acc = acc + h.buckets.(i) in
        if acc >= rank then bucket_le i else walk (i + 1) acc
    in
    walk 0 0
  end

let hist_value h =
  let buckets = Array.map Atomic.get h.h_counts in
  {
    buckets;
    sum = Atomic.get h.h_sum;
    count = Array.fold_left ( + ) 0 buckets;
  }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  spans : (string * (float * int)) list;
  histograms : (string * hist) list;
}

let strip key = String.sub key 2 (String.length key - 2)

let snapshot_in t =
  let instruments =
    locked t (fun () -> Hashtbl.fold (fun k i acc -> (k, i) :: acc) t.tbl [])
  in
  let counters = ref []
  and gauges = ref []
  and spans = ref []
  and histograms = ref [] in
  List.iter
    (fun (key, i) ->
      let name = strip key in
      match i with
      | Counter c -> counters := (name, Atomic.get c) :: !counters
      | Gauge g -> gauges := (name, Atomic.get g) :: !gauges
      | Span s ->
        spans := (name, (Atomic.get s.total, Atomic.get s.count)) :: !spans
      | Histogram h -> histograms := (name, hist_value h) :: !histograms)
    instruments;
  let by_name (a, _) (b, _) = String.compare a b in
  {
    counters = List.sort by_name !counters;
    gauges = List.sort by_name !gauges;
    spans = List.sort by_name !spans;
    histograms = List.sort by_name !histograms;
  }

let snapshot () = snapshot_in default

let reset_in t =
  locked t (fun () ->
      Hashtbl.iter
        (fun _ i ->
          match i with
          | Counter c -> Atomic.set c 0
          | Gauge g -> Atomic.set g 0.0
          | Span s ->
            Atomic.set s.total 0.0;
            Atomic.set s.count 0
          | Histogram h ->
            Array.iter (fun c -> Atomic.set c 0) h.h_counts;
            Atomic.set h.h_sum 0.0)
        t.tbl)

let reset () = reset_in default

(* Hand-rolled JSON: names are code-controlled but escape them anyway. *)
let add_json_string = Json.add_string

let add_json_float = Json.add_float

let to_json_in t =
  let s = snapshot_in t in
  let buf = Buffer.create 1024 in
  let obj fields =
    Buffer.add_char buf '{';
    List.iteri
      (fun i (name, emit) ->
        if i > 0 then Buffer.add_string buf ", ";
        add_json_string buf name;
        Buffer.add_string buf ": ";
        emit ())
      fields;
    Buffer.add_char buf '}'
  in
  Buffer.add_string buf "{\"counters\": ";
  obj
    (List.map
       (fun (n, v) -> (n, fun () -> Buffer.add_string buf (string_of_int v)))
       s.counters);
  Buffer.add_string buf ", \"gauges\": ";
  obj (List.map (fun (n, v) -> (n, fun () -> add_json_float buf v)) s.gauges);
  Buffer.add_string buf ", \"spans\": ";
  obj
    (List.map
       (fun (n, (secs, count)) ->
         ( n,
           fun () ->
             Buffer.add_string buf "{\"seconds\": ";
             add_json_float buf secs;
             Buffer.add_string buf ", \"count\": ";
             Buffer.add_string buf (string_of_int count);
             Buffer.add_char buf '}' ))
       s.spans);
  Buffer.add_string buf ", \"histograms\": ";
  obj
    (List.map
       (fun (n, h) ->
         ( n,
           fun () ->
             Printf.ksprintf (Buffer.add_string buf)
               "{\"count\": %d, \"sum\": " h.count;
             add_json_float buf h.sum;
             List.iter
               (fun (label, q) ->
                 Printf.ksprintf (Buffer.add_string buf) ", \"%s\": " label;
                 add_json_float buf (hist_quantile h q))
               [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99) ];
             Buffer.add_string buf ", \"buckets\": [";
             let first = ref true in
             Array.iteri
               (fun i c ->
                 if c > 0 then begin
                   if not !first then Buffer.add_string buf ", ";
                   first := false;
                   let le = bucket_le i in
                   Buffer.add_char buf '[';
                   if Float.is_finite le then add_json_float buf le
                   else add_json_string buf "+Inf";
                   Printf.ksprintf (Buffer.add_string buf) ", %d]" c
                 end)
               h.buckets;
             Buffer.add_string buf "]}" ))
       s.histograms);
  Buffer.add_char buf '}';
  Buffer.contents buf

let to_json () = to_json_in default

(* Prometheus text exposition (version 0.0.4): one # TYPE line per metric,
   histogram buckets cumulative with an le label, spans exported as
   summaries under <name>_seconds. The output is sorted by name within each
   kind, so it is deterministic for a given snapshot. *)

let prom_name name =
  let mangled =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
        | _ -> '_')
      name
  in
  "sdft_" ^ mangled

let prom_float v =
  if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_nan v then "NaN"
  else Printf.sprintf "%.17g" v

let to_prometheus_in t =
  let s = snapshot_in t in
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string buf l; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun (n, v) ->
      let pn = prom_name n in
      line "# TYPE %s counter" pn;
      line "%s %d" pn v)
    s.counters;
  List.iter
    (fun (n, v) ->
      let pn = prom_name n in
      line "# TYPE %s gauge" pn;
      line "%s %s" pn (prom_float v))
    s.gauges;
  List.iter
    (fun (n, (secs, count)) ->
      let pn = prom_name (n ^ "_seconds") in
      line "# TYPE %s summary" pn;
      line "%s_sum %s" pn (prom_float secs);
      line "%s_count %d" pn count)
    s.spans;
  List.iter
    (fun (n, h) ->
      let pn = prom_name n in
      line "# TYPE %s histogram" pn;
      let cum = ref 0 in
      Array.iteri
        (fun i c ->
          cum := !cum + c;
          let le =
            let b = bucket_le i in
            if Float.is_finite b then Printf.sprintf "%g" b else "+Inf"
          in
          line "%s_bucket{le=\"%s\"} %d" pn le !cum)
        h.buckets;
      line "%s_sum %s" pn (prom_float h.sum);
      line "%s_count %d" pn h.count)
    s.histograms;
  Buffer.contents buf

let to_prometheus () = to_prometheus_in default

type format =
  | Json_format
  | Prom_format

let write_file_in ?(format = Json_format) t path =
  let contents =
    match format with
    | Json_format -> to_json_in t ^ "\n"
    | Prom_format -> to_prometheus_in t
  in
  Atomic_io.write_file path contents

let write_file ?format path = write_file_in ?format default path

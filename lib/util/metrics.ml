type counter = int Atomic.t

type gauge = float Atomic.t

type span = {
  total : float Atomic.t;
  count : int Atomic.t;
}

(* The registry maps kind-prefixed names to instruments; the lock guards
   registration only — updates go straight to the atomics. *)
type instrument =
  | Counter of counter
  | Gauge of gauge
  | Span of span

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64

let registry_lock = Mutex.create ()

let locked f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let register key make =
  locked (fun () ->
      match Hashtbl.find_opt registry key with
      | Some i -> i
      | None ->
        let i = make () in
        Hashtbl.add registry key i;
        i)

let counter name =
  match register ("c:" ^ name) (fun () -> Counter (Atomic.make 0)) with
  | Counter c -> c
  | Gauge _ | Span _ -> assert false (* "c:" keys only hold counters *)

let gauge name =
  match register ("g:" ^ name) (fun () -> Gauge (Atomic.make 0.0)) with
  | Gauge g -> g
  | Counter _ | Span _ -> assert false

let span name =
  match
    register ("s:" ^ name) (fun () ->
        Span { total = Atomic.make 0.0; count = Atomic.make 0 })
  with
  | Span s -> s
  | Counter _ | Gauge _ -> assert false

let incr c = ignore (Atomic.fetch_and_add c 1)

let add c n = ignore (Atomic.fetch_and_add c n)

let set g v = Atomic.set g v

(* Boxed-float CAS loop: [compare_and_set] compares physically, and the
   value read by [get] is the stored box, so the retry is sound. *)
let rec atomic_add_float a x =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. x)) then atomic_add_float a x

let record s seconds =
  atomic_add_float s.total seconds;
  ignore (Atomic.fetch_and_add s.count 1)

let time s f =
  let t0 = Timer.start () in
  Fun.protect ~finally:(fun () -> record s (Timer.elapsed_s t0)) f

let counter_value c = Atomic.get c

let gauge_value g = Atomic.get g

let span_seconds s = Atomic.get s.total

let span_count s = Atomic.get s.count

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  spans : (string * (float * int)) list;
}

let strip key = String.sub key 2 (String.length key - 2)

let snapshot () =
  let instruments =
    locked (fun () -> Hashtbl.fold (fun k i acc -> (k, i) :: acc) registry [])
  in
  let counters = ref [] and gauges = ref [] and spans = ref [] in
  List.iter
    (fun (key, i) ->
      let name = strip key in
      match i with
      | Counter c -> counters := (name, Atomic.get c) :: !counters
      | Gauge g -> gauges := (name, Atomic.get g) :: !gauges
      | Span s ->
        spans := (name, (Atomic.get s.total, Atomic.get s.count)) :: !spans)
    instruments;
  let by_name (a, _) (b, _) = String.compare a b in
  {
    counters = List.sort by_name !counters;
    gauges = List.sort by_name !gauges;
    spans = List.sort by_name !spans;
  }

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ i ->
          match i with
          | Counter c -> Atomic.set c 0
          | Gauge g -> Atomic.set g 0.0
          | Span s ->
            Atomic.set s.total 0.0;
            Atomic.set s.count 0)
        registry)

(* Hand-rolled JSON: names are code-controlled but escape them anyway. *)
let add_json_string = Json.add_string

let add_json_float = Json.add_float

let to_json () =
  let s = snapshot () in
  let buf = Buffer.create 1024 in
  let obj fields =
    Buffer.add_char buf '{';
    List.iteri
      (fun i (name, emit) ->
        if i > 0 then Buffer.add_string buf ", ";
        add_json_string buf name;
        Buffer.add_string buf ": ";
        emit ())
      fields;
    Buffer.add_char buf '}'
  in
  Buffer.add_string buf "{\"counters\": ";
  obj
    (List.map
       (fun (n, v) -> (n, fun () -> Buffer.add_string buf (string_of_int v)))
       s.counters);
  Buffer.add_string buf ", \"gauges\": ";
  obj (List.map (fun (n, v) -> (n, fun () -> add_json_float buf v)) s.gauges);
  Buffer.add_string buf ", \"spans\": ";
  obj
    (List.map
       (fun (n, (secs, count)) ->
         ( n,
           fun () ->
             Buffer.add_string buf "{\"seconds\": ";
             add_json_float buf secs;
             Buffer.add_string buf ", \"count\": ";
             Buffer.add_string buf (string_of_int count);
             Buffer.add_char buf '}' ))
       s.spans);
  Buffer.add_char buf '}';
  Buffer.contents buf

let write_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json ());
      output_char oc '\n')

(* Live progress reporting. The reporter is pure observation: it is driven
   from Guard probes and per-work-item steps, keeps its state in atomics,
   and rate-limits emission by wall clock — it never influences the
   computation, so results are bit-identical with it on or off. *)

type t = {
  emit : string -> unit;
  emit_end : unit -> unit;
  interval : float;
  started_at : float;
  phase : string Atomic.t;
  n_done : int Atomic.t;
  total : int Atomic.t;
  skipped : int Atomic.t; (* checkpoint-skipped items, excluded from [total] *)
  cost_done : float Atomic.t;
  cost_total : float Atomic.t;
  heap_mb : float Atomic.t; (* peak heap seen at ticks, for display *)
  last_emit : float Atomic.t;
  emitted : bool Atomic.t;
}

(* Default sink: on a TTY, a single carriage-return-overwritten stderr
   line, padded to a fixed width so a shorter line fully covers its
   predecessor; everywhere else (piped logs, CI captures, redirects) plain
   newline-terminated lines — CR overwriting would garble the capture. *)
let rendered ~tty line =
  if tty then Printf.sprintf "\r%-79s" line else line ^ "\n"

let stderr_is_tty = lazy (Unix.isatty Unix.stderr)

let create ?tty ?interval ?emit ?emit_end () =
  let tty =
    match tty with Some b -> b | None -> Lazy.force stderr_is_tty
  in
  (* Plain-line mode appends instead of overwriting, so it defaults to a
     gentler cadence to keep captured logs readable. *)
  let interval =
    match interval with Some i -> i | None -> if tty then 0.2 else 1.0
  in
  let emit =
    match emit with
    | Some e -> e
    | None ->
      fun line ->
        output_string stderr (rendered ~tty line);
        flush stderr
  in
  let emit_end =
    match emit_end with
    | Some e -> e
    | None -> if tty then prerr_newline else fun () -> ()
  in
  {
    emit;
    emit_end;
    interval;
    started_at = Unix.gettimeofday ();
    phase = Atomic.make "";
    n_done = Atomic.make 0;
    total = Atomic.make 0;
    skipped = Atomic.make 0;
    cost_done = Atomic.make 0.0;
    cost_total = Atomic.make 0.0;
    heap_mb = Atomic.make 0.0;
    last_emit = Atomic.make 0.0;
    emitted = Atomic.make false;
  }

let rec atomic_add_float a x =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. x)) then atomic_add_float a x

let rec atomic_max_float a x =
  let old = Atomic.get a in
  if x > old && not (Atomic.compare_and_set a old x) then atomic_max_float a x

let pp_eta seconds =
  if Float.is_finite seconds && seconds >= 0.0 then
    if seconds < 60.0 then Printf.sprintf "%.1fs" seconds
    else if seconds < 3600.0 then
      Printf.sprintf "%dm%02ds"
        (int_of_float seconds / 60)
        (int_of_float seconds mod 60)
    else Printf.sprintf "%.1fh" (seconds /. 3600.0)
  else "?"

let render t =
  let phase = Atomic.get t.phase in
  let n_done = Atomic.get t.n_done in
  let total = Atomic.get t.total in
  let elapsed = Unix.gettimeofday () -. t.started_at in
  let buf = Buffer.create 96 in
  Printf.ksprintf (Buffer.add_string buf) "[%s]"
    (if phase = "" then "…" else phase);
  if total > 0 then begin
    (* Fraction done by schedule cost when the phase declared costs (the
       cost-descending schedule front-loads expensive cutsets, so the cost
       fraction is the honest ETA basis), by plain count otherwise. *)
    let frac =
      let ct = Atomic.get t.cost_total in
      if ct > 0.0 then Float.min 1.0 (Atomic.get t.cost_done /. ct)
      else float_of_int n_done /. float_of_int total
    in
    Printf.ksprintf (Buffer.add_string buf) " %d/%d (%.0f%%)" n_done total
      (100.0 *. frac);
    (* [total] counts only remaining work; resumed sweeps surface what the
       checkpoint already certified separately so the ETA stays honest. *)
    let skipped = Atomic.get t.skipped in
    if skipped > 0 then
      Printf.ksprintf (Buffer.add_string buf) " (+%d checkpointed)" skipped;
    if frac > 0.0 && frac < 1.0 then
      Printf.ksprintf (Buffer.add_string buf) " · ETA %s"
        (pp_eta (elapsed *. (1.0 -. frac) /. frac))
  end;
  Printf.ksprintf (Buffer.add_string buf) " · %.1fs elapsed" elapsed;
  let heap = Atomic.get t.heap_mb in
  if heap > 0.0 then
    Printf.ksprintf (Buffer.add_string buf) " · heap %.0f MB" heap;
  Buffer.contents buf

let force_emit t =
  Atomic.set t.last_emit (Unix.gettimeofday ());
  Atomic.set t.emitted true;
  t.emit (render t)

let maybe_emit t =
  let now = Unix.gettimeofday () in
  let last = Atomic.get t.last_emit in
  if now -. last >= t.interval && Atomic.compare_and_set t.last_emit last now
  then begin
    Atomic.set t.emitted true;
    t.emit (render t)
  end

let begin_phase t name ?(total = 0) ?(cost_total = 0.0) ?(skipped = 0)
    ?(n_done = 0) () =
  Atomic.set t.phase name;
  Atomic.set t.n_done n_done;
  Atomic.set t.total total;
  Atomic.set t.skipped skipped;
  Atomic.set t.cost_done 0.0;
  Atomic.set t.cost_total cost_total;
  force_emit t

let step t ?(cost = 0.0) () =
  ignore (Atomic.fetch_and_add t.n_done 1);
  if cost > 0.0 then atomic_add_float t.cost_done cost;
  maybe_emit t

let tick t ~heap_mb =
  atomic_max_float t.heap_mb heap_mb;
  maybe_emit t

let finish t =
  if Atomic.get t.emitted then begin
    t.emit (render t);
    t.emit_end ()
  end

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = Int64.of_int seed }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = int64 t in
  { state = s }

let split_n t n =
  if n < 0 then invalid_arg "Rng.split_n: count must be non-negative";
  (* Explicit loop so the derivation order (hence every stream) is fixed by
     the parent state alone, independent of evaluation-order details. *)
  let streams = Array.make n t in
  for i = 0 to n - 1 do
    streams.(i) <- split t
  done;
  streams

(* 53 high bits scaled into [0,1). *)
let float t =
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is < 2^-40 for n < 2^24. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod n

let bool t = Int64.logand (int64 t) 1L = 1L

let exponential t rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  let u = float t in
  -.log1p (-.u) /. rate

let truncated_exponential t rate ~bound =
  if rate <= 0.0 then
    invalid_arg "Rng.truncated_exponential: rate must be positive";
  if bound <= 0.0 then
    invalid_arg "Rng.truncated_exponential: bound must be positive";
  (* Inverse transform of F(x) = (1 - e^{-rate x}) / (1 - e^{-rate bound})
     on [0, bound); expm1/log1p keep it accurate when rate*bound is tiny. *)
  let c = -.expm1 (-.rate *. bound) in
  let u = float t in
  -.log1p (-.u *. c) /. rate

let normal t =
  (* Box-Muller; u must be positive for the log. *)
  let rec positive () =
    let u = float t in
    if u > 0.0 then u else positive ()
  in
  let u1 = positive () and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let lognormal t ~median ~error_factor =
  if median <= 0.0 then invalid_arg "Rng.lognormal: median must be positive";
  if error_factor < 1.0 then
    invalid_arg "Rng.lognormal: error factor must be at least 1";
  let sigma = log error_factor /. 1.645 in
  median *. exp (sigma *. normal t)

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

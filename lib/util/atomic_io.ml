(* The temp file must live in the destination directory: [Sys.rename] is
   atomic only within one filesystem. *)
let write_file path contents =
  let dir = Filename.dirname path in
  let base = Filename.basename path in
  let tmp = Filename.temp_file ~temp_dir:dir ("." ^ base ^ ".") ".tmp" in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc contents)
  with
  | () -> (
    try Sys.rename tmp path
    with e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e)
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

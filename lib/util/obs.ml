type t = {
  metrics : Metrics.t;
  trace : Trace.t;
  failpoints : Failpoint.t;
  progress : Progress.t option;
  peak_heap : Metrics.gauge;
  probe : (unit -> unit) option;
}

let word_mb = float_of_int (Sys.word_size / 8) /. (1024.0 *. 1024.0)

let peak_heap_gauge m = Metrics.gauge_max_in m "analysis.peak_heap_mb"

let default =
  {
    metrics = Metrics.default;
    trace = Trace.default;
    failpoints = Failpoint.default;
    progress = None;
    peak_heap = peak_heap_gauge Metrics.default;
    probe = None;
  }

let create ?metrics ?trace ?failpoints ?progress () =
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  {
    metrics;
    trace = (match trace with Some t -> t | None -> Trace.create ());
    failpoints =
      (match failpoints with Some f -> f | None -> Failpoint.create ());
    progress;
    peak_heap = peak_heap_gauge metrics;
    probe = None;
  }

let with_progress obs progress = { obs with progress = Some progress }

let with_on_probe obs f = { obs with probe = Some f }

let heap_mb () =
  float_of_int (Gc.quick_stat ()).Gc.heap_words *. word_mb

let tick obs =
  match obs.progress with
  | None -> ()
  | Some p ->
    let heap = heap_mb () in
    Metrics.set_max obs.peak_heap heap;
    Progress.tick p ~heap_mb:heap

let step obs ?cost () =
  match obs.progress with
  | None -> ()
  | Some p ->
    Metrics.set_max obs.peak_heap (heap_mb ());
    Progress.step p ?cost ()

let begin_phase obs name ?total ?cost_total ?skipped ?n_done () =
  match obs.progress with
  | None -> ()
  | Some p -> Progress.begin_phase p name ?total ?cost_total ?skipped ?n_done ()

let finish_progress obs =
  match obs.progress with None -> () | Some p -> Progress.finish p

(* The probe hook for Guard.create: [None] when nothing wants the
   heartbeat, so guards without limits stay completely passive and the hot
   loops pay nothing beyond the existing [active] test. An extra [probe]
   (the server's worker-watchdog heartbeat) composes with the progress
   tick. *)
let on_probe obs =
  match (obs.progress, obs.probe) with
  | None, None -> None
  | _, _ ->
    Some
      (fun () ->
        (match obs.probe with Some f -> f () | None -> ());
        tick obs)

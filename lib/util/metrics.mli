(** Lightweight metrics: named monotonic counters, gauges, span timers and
    fixed-bucket histograms, grouped in registries, with JSON and
    Prometheus text serialization.

    A {e registry} ({!t}) holds one process- or analysis-scoped set of
    instruments. The process-global {!default} registry is shared by the
    whole process so that library code ([Mocus.run],
    [Transient.distribution], [Sdft_analysis.analyze]) can publish counters
    without threading handles through every call, and the harnesses
    ([bin/main.ml --metrics], [bench/main.ml]) can dump one consolidated
    snapshot at the end. Code that needs isolation — concurrent analyses in
    one process — creates its own registry (usually through
    {!Obs.create}) and resolves instruments with the [_in] variants.

    All updates are thread-safe under multiple domains: counters, spans and
    histograms are updated with [Atomic] read-modify-write loops (no
    registry mutex on the hot path); only registration of a {e new} name
    takes a lock. Instruments are cheap enough to update from parallel
    workers, but code with a very hot inner loop should accumulate locally
    and publish once per call (see {!add}). *)

type counter
(** A monotonically increasing integer. *)

type gauge
(** A float cell: last-write-wins under {!set}, monotone max under
    {!set_max}. *)

type span
(** An accumulating wall-clock timer: total seconds plus a count of the
    recorded intervals. *)

type histogram
(** A lock-free distribution: observations are counted into fixed
    log-spaced buckets (four per decade over [1e-9 .. ~5.6e8], plus one
    overflow bucket), and their sum is accumulated. Because the bucket
    boundaries are fixed process-wide, snapshots taken on different domains
    or at different times merge {e exactly} — merging is integer addition
    per bucket (see {!hist_merge}). *)

(** {1 Registries} *)

type t
(** A registry of instruments. *)

val create : unit -> t
(** A fresh, empty registry, isolated from every other. *)

val default : t
(** The process-global registry behind {!counter}, {!gauge}, {!span},
    {!histogram}, {!snapshot} and friends. *)

(** {1 Registration}

    Registering the same name twice in one registry returns the same
    instrument, so instruments can be created at module-initialization time
    or lazily. Names are namespaced by convention, e.g.
    ["mocus.partials_generated"]. A name may be reused across kinds
    (counters, gauges, spans and histograms live in separate namespaces).

    The suffix-less functions operate on {!default}; the [_in] variants
    take an explicit registry. *)

val counter : string -> counter

val gauge : string -> gauge

val gauge_max : string -> gauge
(** Same representation as {!gauge}; registered for updating with
    {!set_max} (peak-heap, max-queue-depth). The name distinguishes intent
    at the call site only — a [gauge] and a [gauge_max] with the same name
    are the same instrument. *)

val span : string -> span

val histogram : string -> histogram

val counter_in : t -> string -> counter

val gauge_in : t -> string -> gauge

val gauge_max_in : t -> string -> gauge

val span_in : t -> string -> span

val histogram_in : t -> string -> histogram

(** {1 Updates} *)

val incr : counter -> unit

val add : counter -> int -> unit
(** [add c n] bumps the counter by [n >= 0]. Use this to publish a locally
    accumulated total with a single atomic update. *)

val set : gauge -> float -> unit

val set_max : gauge -> float -> unit
(** [set_max g v] raises the gauge to [v] if [v] is larger, with a CAS
    loop, so concurrent updates from parallel domains converge on the
    maximum regardless of interleaving (plain {!set} keeps whichever write
    lands last). Monotone with respect to the gauge's current value; the
    initial value is [0.], so it is meant for non-negative quantities. *)

val record : span -> float -> unit
(** [record s seconds] adds one interval of the given length. *)

val time : span -> (unit -> 'a) -> 'a
(** [time s f] runs [f] and records its wall-clock duration on [s]. The
    duration is recorded whether [f] returns or raises. *)

val observe : histogram -> float -> unit
(** Count one observation into its bucket and add it to the sum. Lock-free:
    one atomic increment plus one CAS-add. [NaN] counts as [0.]. *)

(** {1 Reads} *)

val counter_value : counter -> int

val gauge_value : gauge -> float

val span_seconds : span -> float
(** Total recorded seconds. *)

val span_count : span -> int
(** Number of recorded intervals. *)

(** {1 Histogram values}

    The pure {!hist} record is both the snapshot form of a live
    {!histogram} and a free-standing value for tests: {!hist_merge} is
    associative and commutative, and exact on counts (bucket counts are
    integers; only [sum] is subject to float rounding). *)

type hist = {
  buckets : int array;
      (** per-bucket counts, {e not} cumulative; length {!n_buckets} *)
  sum : float;
  count : int;  (** sum of [buckets] *)
}

val n_buckets : int
(** Number of buckets, including the final overflow bucket. *)

val bucket_le : int -> float
(** Inclusive upper boundary of bucket [i]; [infinity] for the overflow
    bucket. Bucket [i] covers [(bucket_le (i-1), bucket_le i]], with
    everything at or below the first boundary (including [NaN]) in bucket
    0. *)

val hist_empty : hist

val hist_of_values : float array -> hist
(** Pure construction: bucket every value. *)

val hist_merge : hist -> hist -> hist

val hist_quantile : hist -> float -> float
(** [hist_quantile h q] estimates the [q]-quantile as the upper boundary of
    the bucket holding the [q]-th ranked observation (the standard
    fixed-bucket estimate). [nan] when the histogram is empty; [infinity]
    when the rank falls in the overflow bucket. [q] is clamped to
    [\[0,1\]]. *)

val hist_value : histogram -> hist
(** Snapshot one live histogram. *)

(** {1 Snapshots} *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  spans : (string * (float * int)) list;
      (** name -> (total seconds, interval count) *)
  histograms : (string * hist) list;
}
(** All lists are sorted by name. *)

val snapshot : unit -> snapshot

val snapshot_in : t -> snapshot

val reset : unit -> unit
(** Zero every registered instrument (the registrations themselves are
    kept, so handles created earlier remain valid). Meant for tests and
    for harnesses that dump several windows from one process. *)

val reset_in : t -> unit

(** {1 Serialization} *)

val to_json : unit -> string
(** The current snapshot as a JSON object:
    [{"counters": {..}, "gauges": {..}, "spans": {"name": {"seconds": s,
    "count": n}, ..}, "histograms": {"name": {"count": n, "sum": s,
    "p50": .., "p90": .., "p99": .., "buckets": [[le, count], ..]}, ..}}].
    Histogram buckets list only non-empty buckets, with per-bucket (not
    cumulative) counts; the overflow boundary is the string ["+Inf"]. *)

val to_json_in : t -> string

val to_prometheus : unit -> string
(** The current snapshot in Prometheus text exposition format: metric
    names are prefixed with [sdft_] and mangled to [\[a-zA-Z0-9_\]], each
    preceded by a [# TYPE] line. Counters and gauges map directly; spans
    become summaries named [<name>_seconds] with [_sum]/[_count];
    histograms emit every bucket as [<name>_bucket{le="..."}] with
    {e cumulative} counts ending in [le="+Inf"], plus [_sum] and [_count].
    [_sum]/[_count] agree exactly with the JSON export, since both read
    the same snapshot. *)

val to_prometheus_in : t -> string

type format =
  | Json_format
  | Prom_format

val write_file : ?format:format -> string -> unit
(** Write the current snapshot to the given path — {!to_json} plus a
    trailing newline by default, {!to_prometheus} with [~format:Prom_format]
    — via {!Atomic_io.write_file}, so a kill mid-dump never leaves a
    truncated file. *)

val write_file_in : ?format:format -> t -> string -> unit

(** Append-only record log with a versioned header and CRC-per-record
    framing: the persistence substrate behind the cross-run quantification
    cache.

    On-disk layout: a magic string, a length-prefixed opaque version
    {e stamp}, then a sequence of frames [u32le length | u32le crc32 |
    payload]. Opening walks the frames and returns every record whose
    length and CRC check out, stopping at the first that does not — a
    truncated or torn tail is cleanly discarded, never surfaced as
    garbage. A header carrying a different stamp (e.g. after a solver
    change) means the whole file is ignored; the writer then truncates and
    rewrites it under the current stamp.

    Exactly one handle per path is the {e writer} (guarded by a POSIX file
    lock between processes and an in-process registry within one, since
    POSIX locks never conflict with their own process); later openers
    degrade to {!Reader} mode and see a read-only snapshot of the records
    flushed so far. Appends are buffered and flushed every [batch] records
    (and on {!flush}/{!close}), so a crash loses at most the last
    unflushed batch. The writer truncates a torn tail back to the last
    valid frame before its first append.

    {!Failpoint} sites: ["store.open"] fires on every {!open_},
    ["store.append"] on every {!append} — both before any IO, so injected
    failures exercise the callers' degrade-to-memory-only paths. *)

type t

type mode =
  | Writer  (** owns the file lock; appends land on disk *)
  | Reader  (** someone else is writing; appends are dropped *)

val open_ : ?batch:int -> stamp:string -> string -> t * string list
(** [open_ ~stamp path] opens or creates the log and returns the valid
    records in file order. A missing file is created (writer) or read as
    empty (reader); a stamp mismatch yields no records and — for the
    writer — a truncate-and-rewrite under [stamp]. [batch] (default 32)
    is the append count between automatic flushes.

    Raises [Unix.Unix_error] / [Sys_error] on unrecoverable IO errors
    (callers are expected to degrade to memory-only operation). *)

val mode : t -> mode

val path : t -> string

val healthy : t -> bool
(** [true] while the handle is a {!Writer} whose descriptor is still live —
    i.e. appends can reach the disk. Becomes [false] permanently once an IO
    failure tears the handle down (or after {!close}); always [false] for a
    {!Reader}. Circuit-breaker callers use this to distinguish an injected
    (recoverable) append failure from a torn-down handle that needs a
    reopen. *)

val append : t -> string -> bool
(** Buffer one record for writing; flushes automatically every [batch]
    appends. Returns [false] — and drops the record — in {!Reader} mode or
    after the handle broke on an IO error. Raises on a flush-triggering IO
    failure, after which the handle is permanently read-only. *)

val appended : t -> int
(** Records accepted by {!append} over the lifetime of this handle. *)

val flush : t -> unit
(** Force buffered frames out. Raises on IO failure (handle then broken,
    see {!append}). *)

val close : t -> unit
(** Flush, release the writer lock and close. Idempotent. *)

(** {1 Codec internals, exposed for tests} *)

val crc32 : string -> int
(** The IEEE CRC-32 used by the framing. *)

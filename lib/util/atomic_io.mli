(** Crash-safe file writes: the contents are written to a fresh temporary
    file in the {e same} directory as the destination and atomically
    renamed over it, so a reader (or a CI artifact collector) never sees a
    truncated file — even when the writing process is killed mid-dump by a
    deadline or OOM. On any error the temporary file is removed and the
    destination is left untouched. *)

val write_file : string -> string -> unit
(** [write_file path contents] atomically replaces [path] with [contents].

    @raise Sys_error when the directory is not writable or the rename
    fails. *)

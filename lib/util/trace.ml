type value =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type kind =
  | Span
  | Instant

type event = {
  ev_name : string;
  ev_kind : kind;
  ev_start : float;  (* Unix epoch seconds *)
  ev_dur : float;  (* 0 for instants *)
  ev_depth : int;
  ev_domain : int;
  ev_attrs : (string * value) list;
}

(* An open span carries everything needed to close it. Attributes are added
   front-first while the span is open ([add_attr]) and reversed on close so
   the export order matches the call order. *)
type open_span = {
  os_name : string;
  os_start : float;
  os_depth : int;
  mutable os_attrs : (string * value) list;
}

(* One buffer per (sink, domain): the writing side of a buffer is only
   ever touched by its own domain, so the hot path never locks. Buffers
   stay registered in their sink after their domain dies, which is how
   spans recorded by short-lived [Parallel.map_init] workers survive the
   join and appear in the export. *)
type buffer = {
  buf_id : int;
  events : event Vec.t;
  mutable stack : open_span list;
}

(* A sink is one isolated trace destination. Buffers are looked up by the
   calling domain's id in a CAS-updated association list; domain ids are
   never reused within a process, so an entry can only be claimed once.
   The list stays short (one entry per domain that ever traced into the
   sink), so the scan costs less than the [Unix.gettimeofday] every
   recording makes anyway. *)
type sink = {
  enabled_flag : bool Atomic.t;
  buffers : (int * buffer) list Atomic.t;
  next_buffer_id : int Atomic.t;
}

type t = sink

let make_sink enabled =
  {
    enabled_flag = Atomic.make enabled;
    buffers = Atomic.make [];
    next_buffer_id = Atomic.make 0;
  }

(* The default sink keeps the historical global behavior: disabled until
   the harness flips it on. Fresh sinks are for explicitly-created
   observability contexts, where creation is the intent to record. *)
let default = make_sink false

let create ?(enabled = true) () = make_sink enabled

let enabled_in s = Atomic.get s.enabled_flag

let set_enabled_in s b = Atomic.set s.enabled_flag b

let enabled () = enabled_in default

let set_enabled b = set_enabled_in default b

let rec buffer_for s =
  let did = (Domain.self () :> int) in
  let l = Atomic.get s.buffers in
  match List.assoc_opt did l with
  | Some b -> b
  | None ->
    let b =
      {
        buf_id = Atomic.fetch_and_add s.next_buffer_id 1;
        events = Vec.create ();
        stack = [];
      }
    in
    if Atomic.compare_and_set s.buffers l ((did, b) :: l) then b
    else buffer_for s (* another domain's insert won; retry on the new list *)

let begin_span buf name =
  let os =
    {
      os_name = name;
      os_start = Unix.gettimeofday ();
      os_depth = List.length buf.stack;
      os_attrs = [];
    }
  in
  buf.stack <- os :: buf.stack;
  os

let end_span buf os attrs =
  let now = Unix.gettimeofday () in
  (match buf.stack with
  | top :: rest when top == os -> buf.stack <- rest
  | _ ->
    (* A span closed out of order (an exception unwound past an enclosing
       with_span whose finally already ran, or enable flipped mid-span):
       drop every span opened after it so depths stay consistent. *)
    let rec drop = function
      | top :: rest when top == os -> rest
      | _ :: rest -> drop rest
      | [] -> []
    in
    buf.stack <- drop buf.stack);
  Vec.push buf.events
    {
      ev_name = os.os_name;
      ev_kind = Span;
      ev_start = os.os_start;
      ev_dur = now -. os.os_start;
      ev_depth = os.os_depth;
      ev_domain = buf.buf_id;
      ev_attrs = List.rev_append os.os_attrs (List.rev attrs);
    }

let with_span ?(sink = default) ?(attrs = []) name f =
  if not (Atomic.get sink.enabled_flag) then f ()
  else begin
    let buf = buffer_for sink in
    let os = begin_span buf name in
    Fun.protect ~finally:(fun () -> end_span buf os attrs) f
  end

let add_attr ?(sink = default) name v =
  if Atomic.get sink.enabled_flag then begin
    let buf = buffer_for sink in
    match buf.stack with
    | [] -> ()
    | os :: _ -> os.os_attrs <- (name, v) :: os.os_attrs
  end

let instant ?(sink = default) ?(attrs = []) name =
  if Atomic.get sink.enabled_flag then begin
    let buf = buffer_for sink in
    Vec.push buf.events
      {
        ev_name = name;
        ev_kind = Instant;
        ev_start = Unix.gettimeofday ();
        ev_dur = 0.0;
        ev_depth = List.length buf.stack;
        ev_domain = buf.buf_id;
        ev_attrs = attrs;
      }
  end

(* Snapshot/reset walk every registered buffer. They are meant to run while
   the traced workload is quiescent (after Parallel.map_init has joined). *)
let snapshot_in s =
  let buffers = List.map snd (Atomic.get s.buffers) in
  let all = List.concat_map (fun b -> Vec.to_list b.events) buffers in
  List.sort
    (fun a b ->
      let c = compare a.ev_start b.ev_start in
      if c <> 0 then c
      else
        let c = compare a.ev_domain b.ev_domain in
        if c <> 0 then c else compare b.ev_depth a.ev_depth)
    all

let snapshot () = snapshot_in default

let reset_in s =
  List.iter
    (fun (_, b) ->
      Vec.clear b.events;
      b.stack <- [])
    (Atomic.get s.buffers)

let reset () = reset_in default

(* Aggregation for terminal reporting ("top spans"). The per-name totals
   are summed in a canonical event order (start time, then duration, then
   domain) with Kahan compensation, so the reported total for a given set
   of events does not depend on which domain's buffer they landed in or on
   the buffer registration order. Rows sort by total descending with a
   stable tie-break on name. *)
let aggregate_in s =
  let tbl : (string, event list ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun ev ->
      if ev.ev_kind = Span then
        match Hashtbl.find_opt tbl ev.ev_name with
        | Some cell -> cell := ev :: !cell
        | None -> Hashtbl.add tbl ev.ev_name (ref [ ev ]))
    (snapshot_in s);
  let rows =
    Hashtbl.fold
      (fun name cell acc ->
        let events =
          List.sort
            (fun a b ->
              let c = compare a.ev_start b.ev_start in
              if c <> 0 then c
              else
                let c = compare a.ev_dur b.ev_dur in
                if c <> 0 then c else compare a.ev_domain b.ev_domain)
            !cell
        in
        let total = Kahan.create () in
        List.iter (fun ev -> Kahan.add total ev.ev_dur) events;
        (name, (List.length events, Kahan.total total)) :: acc)
      tbl []
  in
  List.sort
    (fun (na, (_, ta)) (nb, (_, tb)) ->
      let c = compare tb ta in
      if c <> 0 then c else String.compare na nb)
    rows

let aggregate () = aggregate_in default

(* Serialization. *)

let add_value buf = function
  | Str s -> Json.add_string buf s
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Json.add_float buf f
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")

let add_attrs buf attrs =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      Json.add_string buf name;
      Buffer.add_string buf ": ";
      add_value buf v)
    attrs;
  Buffer.add_char buf '}'

let to_jsonl_in s =
  let buf = Buffer.create 4096 in
  List.iter
    (fun ev ->
      Buffer.add_string buf "{\"name\": ";
      Json.add_string buf ev.ev_name;
      Buffer.add_string buf ", \"kind\": ";
      Json.add_string buf
        (match ev.ev_kind with Span -> "span" | Instant -> "instant");
      Buffer.add_string buf ", \"ts\": ";
      Json.add_float buf ev.ev_start;
      Buffer.add_string buf ", \"dur\": ";
      Json.add_float buf ev.ev_dur;
      Printf.ksprintf (Buffer.add_string buf)
        ", \"depth\": %d, \"domain\": %d, \"args\": " ev.ev_depth ev.ev_domain;
      add_attrs buf ev.ev_attrs;
      Buffer.add_string buf "}\n")
    (snapshot_in s);
  Buffer.contents buf

let to_jsonl () = to_jsonl_in default

(* Chrome trace-event JSON (chrome://tracing, Perfetto): complete events
   ("X") with microsecond timestamps rebased to the earliest event, one
   thread lane per domain. Instants become thread-scoped "i" events. *)
let to_chrome_in s =
  let events = snapshot_in s in
  let t0 =
    List.fold_left (fun acc ev -> Float.min acc ev.ev_start) infinity events
  in
  let us t = (t -. t0) *. 1e6 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n{\"name\": ";
      Json.add_string buf ev.ev_name;
      Buffer.add_string buf ", \"cat\": \"sdft\", \"ph\": ";
      (match ev.ev_kind with
      | Span ->
        Buffer.add_string buf "\"X\", \"dur\": ";
        Json.add_float buf (ev.ev_dur *. 1e6)
      | Instant -> Buffer.add_string buf "\"i\", \"s\": \"t\"");
      Buffer.add_string buf ", \"ts\": ";
      Json.add_float buf (us ev.ev_start);
      Printf.ksprintf (Buffer.add_string buf)
        ", \"pid\": 0, \"tid\": %d, \"args\": " ev.ev_domain;
      add_attrs buf ev.ev_attrs;
      Buffer.add_string buf "}")
    events;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

let to_chrome () = to_chrome_in default

let write_file_in s path =
  let contents =
    if Filename.check_suffix path ".json" then to_chrome_in s
    else to_jsonl_in s
  in
  Atomic_io.write_file path contents

let write_file path = write_file_in default path

type value =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type kind =
  | Span
  | Instant

type event = {
  ev_name : string;
  ev_kind : kind;
  ev_start : float;  (* Unix epoch seconds *)
  ev_dur : float;  (* 0 for instants *)
  ev_depth : int;
  ev_domain : int;
  ev_attrs : (string * value) list;
}

(* Disabled is the common case: every entry point loads one atomic and
   leaves. No buffer is touched, no time is read, nothing allocates. *)
let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let set_enabled b = Atomic.set enabled_flag b

(* An open span carries everything needed to close it. Attributes are added
   front-first while the span is open ([add_attr]) and reversed on close so
   the export order matches the call order. *)
type open_span = {
  os_name : string;
  os_start : float;
  os_depth : int;
  mutable os_attrs : (string * value) list;
}

(* One buffer per domain, reached through DLS so the hot path never locks.
   Buffers are registered in a global list at creation and stay registered
   after their domain dies, which is how spans recorded by short-lived
   [Parallel.map_init] workers survive the join and appear in the export. *)
type buffer = {
  buf_id : int;
  events : event Vec.t;
  mutable stack : open_span list;
}

let registry : buffer list ref = ref []

let registry_lock = Mutex.create ()

let next_buffer_id = Atomic.make 0

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          buf_id = Atomic.fetch_and_add next_buffer_id 1;
          events = Vec.create ();
          stack = [];
        }
      in
      Mutex.lock registry_lock;
      registry := b :: !registry;
      Mutex.unlock registry_lock;
      b)

let buffer () = Domain.DLS.get buffer_key

let begin_span buf name =
  let os =
    {
      os_name = name;
      os_start = Unix.gettimeofday ();
      os_depth = List.length buf.stack;
      os_attrs = [];
    }
  in
  buf.stack <- os :: buf.stack;
  os

let end_span buf os attrs =
  let now = Unix.gettimeofday () in
  (match buf.stack with
  | top :: rest when top == os -> buf.stack <- rest
  | _ ->
    (* A span closed out of order (an exception unwound past an enclosing
       with_span whose finally already ran, or enable flipped mid-span):
       drop every span opened after it so depths stay consistent. *)
    let rec drop = function
      | top :: rest when top == os -> rest
      | _ :: rest -> drop rest
      | [] -> []
    in
    buf.stack <- drop buf.stack);
  Vec.push buf.events
    {
      ev_name = os.os_name;
      ev_kind = Span;
      ev_start = os.os_start;
      ev_dur = now -. os.os_start;
      ev_depth = os.os_depth;
      ev_domain = buf.buf_id;
      ev_attrs = List.rev_append os.os_attrs (List.rev attrs);
    }

let with_span ?(attrs = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let buf = buffer () in
    let os = begin_span buf name in
    Fun.protect ~finally:(fun () -> end_span buf os attrs) f
  end

let add_attr name v =
  if Atomic.get enabled_flag then begin
    let buf = buffer () in
    match buf.stack with
    | [] -> ()
    | os :: _ -> os.os_attrs <- (name, v) :: os.os_attrs
  end

let instant ?(attrs = []) name =
  if Atomic.get enabled_flag then begin
    let buf = buffer () in
    Vec.push buf.events
      {
        ev_name = name;
        ev_kind = Instant;
        ev_start = Unix.gettimeofday ();
        ev_dur = 0.0;
        ev_depth = List.length buf.stack;
        ev_domain = buf.buf_id;
        ev_attrs = attrs;
      }
  end

(* Snapshot/reset walk every registered buffer. They are meant to run while
   the traced workload is quiescent (after Parallel.map_init has joined);
   the lock only protects the registry list itself. *)
let snapshot () =
  Mutex.lock registry_lock;
  let buffers = !registry in
  Mutex.unlock registry_lock;
  let all = List.concat_map (fun b -> Vec.to_list b.events) buffers in
  List.sort
    (fun a b ->
      let c = compare a.ev_start b.ev_start in
      if c <> 0 then c
      else
        let c = compare a.ev_domain b.ev_domain in
        if c <> 0 then c else compare b.ev_depth a.ev_depth)
    all

let reset () =
  Mutex.lock registry_lock;
  let buffers = !registry in
  Mutex.unlock registry_lock;
  List.iter
    (fun b ->
      Vec.clear b.events;
      b.stack <- [])
    buffers

(* Aggregation for terminal reporting ("top spans"). *)
let aggregate () =
  let tbl : (string, (int * float) ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun ev ->
      if ev.ev_kind = Span then
        match Hashtbl.find_opt tbl ev.ev_name with
        | Some cell ->
          let n, total = !cell in
          cell := (n + 1, total +. ev.ev_dur)
        | None -> Hashtbl.add tbl ev.ev_name (ref (1, ev.ev_dur)))
    (snapshot ());
  let rows = Hashtbl.fold (fun name cell acc -> (name, !cell) :: acc) tbl [] in
  List.sort
    (fun (na, (_, ta)) (nb, (_, tb)) ->
      let c = compare tb ta in
      if c <> 0 then c else String.compare na nb)
    rows

(* Serialization. *)

let add_value buf = function
  | Str s -> Json.add_string buf s
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Json.add_float buf f
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")

let add_attrs buf attrs =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      Json.add_string buf name;
      Buffer.add_string buf ": ";
      add_value buf v)
    attrs;
  Buffer.add_char buf '}'

let to_jsonl () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun ev ->
      Buffer.add_string buf "{\"name\": ";
      Json.add_string buf ev.ev_name;
      Buffer.add_string buf ", \"kind\": ";
      Json.add_string buf
        (match ev.ev_kind with Span -> "span" | Instant -> "instant");
      Buffer.add_string buf ", \"ts\": ";
      Json.add_float buf ev.ev_start;
      Buffer.add_string buf ", \"dur\": ";
      Json.add_float buf ev.ev_dur;
      Printf.ksprintf (Buffer.add_string buf)
        ", \"depth\": %d, \"domain\": %d, \"args\": " ev.ev_depth ev.ev_domain;
      add_attrs buf ev.ev_attrs;
      Buffer.add_string buf "}\n")
    (snapshot ());
  Buffer.contents buf

(* Chrome trace-event JSON (chrome://tracing, Perfetto): complete events
   ("X") with microsecond timestamps rebased to the earliest event, one
   thread lane per domain. Instants become thread-scoped "i" events. *)
let to_chrome () =
  let events = snapshot () in
  let t0 =
    List.fold_left (fun acc ev -> Float.min acc ev.ev_start) infinity events
  in
  let us t = (t -. t0) *. 1e6 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n{\"name\": ";
      Json.add_string buf ev.ev_name;
      Buffer.add_string buf ", \"cat\": \"sdft\", \"ph\": ";
      (match ev.ev_kind with
      | Span ->
        Buffer.add_string buf "\"X\", \"dur\": ";
        Json.add_float buf (ev.ev_dur *. 1e6)
      | Instant -> Buffer.add_string buf "\"i\", \"s\": \"t\"");
      Buffer.add_string buf ", \"ts\": ";
      Json.add_float buf (us ev.ev_start);
      Printf.ksprintf (Buffer.add_string buf)
        ", \"pid\": 0, \"tid\": %d, \"args\": " ev.ev_domain;
      add_attrs buf ev.ev_attrs;
      Buffer.add_string buf "}")
    events;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

let write_file path =
  let contents =
    if Filename.check_suffix path ".json" then to_chrome () else to_jsonl ()
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

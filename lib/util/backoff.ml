(* Capped exponential backoff with deterministic seeded jitter — the retry
   pacing policy shared by the analysis client (reconnects, retry_after
   honouring) and any future batch retrier.

   The delay for attempt [k] (1-based) is

     min(cap, base * factor^(k-1)) * (1 - jitter + 2 * jitter * u)

   where [u] in [0,1) is drawn from a splitmix64 stream keyed on
   [(seed, k)]. Keying on the attempt index rather than on mutable RNG
   state makes the whole schedule a pure function of (parameters, seed):
   two clients with the same seed retry on the same schedule, and a test
   can predict every delay exactly. *)

type t = {
  base : float;
  factor : float;
  cap : float;
  jitter : float;
  seed : int;
  mutable attempt : int;
}

let create ?(base = 0.05) ?(factor = 2.0) ?(cap = 5.0) ?(jitter = 0.25)
    ?(seed = 1) () =
  if not (Float.is_finite base) || base < 0.0 then
    invalid_arg "Backoff.create: base must be finite and >= 0";
  if not (Float.is_finite factor) || factor < 1.0 then
    invalid_arg "Backoff.create: factor must be finite and >= 1";
  if not (Float.is_finite cap) || cap < base then
    invalid_arg "Backoff.create: cap must be finite and >= base";
  if Float.is_nan jitter || jitter < 0.0 || jitter > 1.0 then
    invalid_arg "Backoff.create: jitter must be in [0,1]";
  { base; factor; cap; jitter; seed; attempt = 0 }

let delay_for t k =
  if k < 1 then invalid_arg "Backoff.delay_for: attempt must be >= 1";
  (* factor^(k-1) without drifting through huge exponents: clamp at the cap
     as soon as the raw delay passes it. *)
  let raw =
    let rec go d i =
      if i >= k || d >= t.cap then d else go (d *. t.factor) (i + 1)
    in
    go t.base 1
  in
  let capped = Float.min t.cap raw in
  let u = Rng.float (Rng.create (t.seed lxor (k * 0x2545F491))) in
  capped *. (1.0 -. t.jitter +. (2.0 *. t.jitter *. u))

let next t =
  t.attempt <- t.attempt + 1;
  delay_for t t.attempt

let attempt t = t.attempt

let reset t = t.attempt <- 0

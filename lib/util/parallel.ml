let map_init ~domains init f work =
  let n = Array.length work in
  if n = 0 then [||]
  else if domains <= 1 then begin
    let state = init () in
    Array.map (f state) work
  end
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* First worker exception wins; everyone else drains and exits. *)
    let failure :
        (exn * Printexc.raw_backtrace) option Atomic.t =
      Atomic.make None
    in
    let fail exn bt =
      ignore (Atomic.compare_and_set failure None (Some (exn, bt)))
    in
    let worker () =
      match init () with
      | exception exn -> fail exn (Printexc.get_raw_backtrace ())
      | state ->
        let continue = ref true in
        while !continue do
          if Atomic.get failure <> None then continue := false
          else begin
            let i = Atomic.fetch_and_add next 1 in
            if i >= n then continue := false
            else
              match f state work.(i) with
              | r -> results.(i) <- Some r
              | exception exn -> fail exn (Printexc.get_raw_backtrace ())
          end
        done
    in
    let spawned =
      Array.init (domains - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join spawned;
    match Atomic.get failure with
    | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None ->
      Array.map
        (function
          | Some r -> r
          | None -> assert false (* no failure ⟹ every slot was filled *))
        results
  end

let map ~domains f work = map_init ~domains ignore (fun () x -> f x) work

(* Crash containment: the per-item wrapper turns an exception into an
   [Error] slot, so [map_init]'s first-failure machinery only ever sees
   [init] failures (which stay fatal — without per-domain state nothing can
   run). The scheduling, ordering and success results are exactly those of
   [map_init]. *)
let map_init_result ~domains init f work =
  map_init ~domains init
    (fun state x ->
      match
        (* Inside the capture, so an injected worker crash is contained in
           this slot like any other [f] failure. *)
        Failpoint.hit "parallel.worker";
        f state x
      with
      | r -> Ok r
      | exception exn -> Error (exn, Printexc.get_raw_backtrace ()))
    work

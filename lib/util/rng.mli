(** Deterministic pseudo-random numbers (splitmix64).

    Every stochastic component of the library (model generators, the
    Monte-Carlo simulator) draws from an explicit [Rng.t] so that all
    experiments are reproducible from a single seed. *)

type t

val create : int -> t
(** [create seed] initialises a generator from an integer seed. *)

val split : t -> t
(** Derive an independent stream (for parallel or nested generators). *)

val split_n : t -> int -> t array
(** [split_n t n] derives [n] independent streams, advancing [t] by [n]
    draws. The streams depend only on [t]'s state and the index, so work
    partitioned over the array is reproducible no matter how many workers
    later consume it (each worker owns whole streams, never shares one). *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [[0, 1)]. *)

val int : t -> int -> int
(** [int t n] is uniform in [[0, n-1]]; requires [n > 0]. *)

val bool : t -> bool

val exponential : t -> float -> float
(** [exponential t rate] samples [Exp(rate)]; requires [rate > 0]. *)

val truncated_exponential : t -> float -> bound:float -> float
(** [truncated_exponential t rate ~bound] samples [Exp(rate)] conditioned on
    being smaller than [bound] (inverse-transform on the truncated CDF) —
    the {e forcing} primitive of rare-event simulation. The conditioning
    probability is [1 - exp(-rate *. bound)]; requires [rate > 0] and
    [bound > 0]. *)

val normal : t -> float
(** Standard normal via Box-Muller. *)

val lognormal : t -> median:float -> error_factor:float -> float
(** PSA-style lognormal: [median * exp(sigma * Z)] with
    [sigma = ln(error_factor) / 1.645] (the error factor is the ratio of the
    95th percentile to the median). Requires [median > 0] and
    [error_factor >= 1]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

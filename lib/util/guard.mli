(** Per-analysis resource governance: wall-clock deadlines and memory
    ceilings with cheap cooperative checkpoints.

    A guard is created once per analysis from the caller's limits and then
    threaded through every potentially unbounded loop (MOCUS expansion,
    product-state exploration, BDD construction, uniformization). The loops
    call {!check} each iteration; the guard amortizes the actual clock and
    GC probes over a stride of ~4k calls, so the fast path is a couple of
    loads. When a limit is exceeded, {!Limit_hit} is raised with a typed
    reason and the enclosing analysis walks its degradation ladder instead
    of hanging or dying.

    A guard may be shared across domains: the deadline and ceiling are
    immutable, and the stride counter tolerates racy updates (a lost
    decrement only delays one probe). *)

type reason =
  | Deadline  (** the wall-clock deadline passed *)
  | Mem_limit  (** the major-heap ceiling was exceeded *)
  | State_limit  (** a state-space cap was hit ({!Sdft_product.Too_many_states}) *)
  | Worker_crash  (** a quantification worker died; its slot was contained *)

exception Limit_hit of reason

val reason_to_string : reason -> string
(** Short lowercase label: ["deadline"], ["memory limit"], ["state limit"],
    ["worker crash"]. *)

val pp_reason : Format.formatter -> reason -> unit

type t

val create :
  ?deadline:float -> ?mem_limit_mb:int -> ?on_probe:(unit -> unit) -> unit -> t
(** [create ?deadline ?mem_limit_mb ()] starts the clock now: [deadline] is
    a relative wall-clock budget in seconds, [mem_limit_mb] a ceiling on the
    major-heap size in megabytes (probed with [Gc.quick_stat], so it tracks
    the heap the runtime has actually grown to). Omitted limits never trip.

    [on_probe] is called at every amortized probe of {!check} — once per
    ~4096 calls, before the limit checks — and is the hook for live
    progress reporting: it piggybacks on the stride the hot loops already
    pay for, and attaching it makes {!check} take the stride path even
    without limits. It must not raise and must be domain-safe when the
    guard is shared across domains. It only {e observes} — analysis
    results are bit-identical with or without it.

    @raise Invalid_argument on a negative deadline or non-positive
    ceiling. *)

val none : t
(** A guard with no limits; {!check} on it is a single load. Use as the
    default so unguarded call sites pay (almost) nothing. *)

val unlimited : t -> bool
(** [true] when the guard can never trip (no deadline, no ceiling). *)

val status : t -> reason option
(** Immediate (non-amortized) probe: [Some reason] when a limit is already
    exceeded. Use between work items, where raising would lose work that is
    already done. *)

val check_now : t -> unit
(** Immediate probe that raises {!Limit_hit} when a limit is exceeded. Use
    in loops whose single iteration is already expensive (one uniformization
    step), where amortization would skip too far ahead. *)

val check : t -> unit
(** Amortized cooperative checkpoint for hot loops: decrements a stride
    counter and probes the clock/GC (and runs [on_probe]) only every ~4096
    calls.

    @raise Limit_hit when a limit is exceeded. *)

val remaining_s : t -> float
(** Seconds left until the deadline; [infinity] without one (may be
    negative once expired). *)

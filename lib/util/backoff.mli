(** Capped exponential backoff with deterministic seeded jitter.

    The delay for attempt [k] (1-based) is
    [min(cap, base * factor^(k-1)) * (1 - jitter + 2 * jitter * u)] with
    [u] drawn from a splitmix64 stream keyed on [(seed, k)] — the whole
    schedule is a pure function of the parameters and the seed, so retry
    behaviour is reproducible across runs and testable delay by delay.
    Jittered delays stay within [±jitter] of the capped exponential, which
    keeps a fleet of same-configured clients from thundering in lockstep
    while never violating the cap by more than the jitter fraction. *)

type t

val create :
  ?base:float ->
  ?factor:float ->
  ?cap:float ->
  ?jitter:float ->
  ?seed:int ->
  unit ->
  t
(** Defaults: [base] 0.05 s, [factor] 2, [cap] 5 s, [jitter] 0.25,
    [seed] 1. @raise Invalid_argument on non-finite or out-of-range
    parameters ([base >= 0], [factor >= 1], [cap >= base],
    [jitter] in [0,1]). *)

val next : t -> float
(** Advance the attempt counter and return the delay for the new attempt. *)

val delay_for : t -> int -> float
(** [delay_for t k] is the delay of the 1-based attempt [k], without
    touching the counter — pure, for tests and precomputed schedules.
    @raise Invalid_argument when [k < 1]. *)

val attempt : t -> int
(** Attempts consumed by {!next} since creation or the last {!reset}. *)

val reset : t -> unit
(** Rewind to attempt 0 (e.g. after a successful request). *)

(** Minimal JSON emission helpers shared by the observability sinks
    ({!Metrics}, {!Trace}): escaped string literals and floats that emit
    [null] for non-finite values instead of invalid JSON. *)

val add_string : Buffer.t -> string -> unit
(** Append [s] as a quoted JSON string, escaping quotes, backslashes and
    control characters. *)

val add_float : Buffer.t -> float -> unit
(** Append a finite float with full precision; NaN/infinities become
    [null]. *)

val string_of : string -> string
(** [string_of s] is the quoted, escaped JSON literal for [s]. *)

(** Minimal JSON emission and parsing helpers.

    Emission is shared by the observability sinks ({!Metrics}, {!Trace}):
    escaped string literals and floats that emit [null] for non-finite
    values instead of invalid JSON. Parsing is a small recursive-descent
    reader covering the full JSON value grammar — enough for the toolkit's
    own artifacts (result manifests, metric snapshots) to be loaded back
    without an external dependency. *)

val add_string : Buffer.t -> string -> unit
(** Append [s] as a quoted JSON string, escaping quotes, backslashes and
    control characters. *)

val add_float : Buffer.t -> float -> unit
(** Append a finite float with full precision; NaN/infinities become
    [null]. *)

val string_of : string -> string
(** [string_of s] is the quoted, escaped JSON literal for [s]. *)

(** {1 Parsing} *)

type value =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of value list
  | Object of (string * value) list

val parse : string -> (value, string) result
(** Parse a complete JSON document. The error string names the offset of
    the first offense. Numbers are represented as floats (like JSON
    itself); [\u] escapes decode to UTF-8. *)

val add_value : Buffer.t -> value -> unit
(** Re-emit a parsed value. Floats render via {!add_float}, so
    [parse] ∘ {!value_to_string} is the identity on any document our own
    writers emit; used to echo client-supplied fragments (request ids)
    back verbatim. *)

val value_to_string : value -> string
(** [value_to_string v] is [add_value] into a fresh buffer. *)

(** {2 Accessors}

    All total: a shape mismatch yields [None] rather than an exception, so
    loaders can fold a whole walk into one diagnostic. *)

val member : string -> value -> value option
(** Field lookup on an [Object]; [None] on missing field or non-object. *)

val to_string : value -> string option

val to_float : value -> float option

val to_int : value -> int option
(** [Some] only for numbers with zero fractional part. *)

val to_bool : value -> bool option

val to_list : value -> value list option

exception Error of string

let error fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

(* Intermediate formula representation, resolved after the whole document
   has been read (definitions may appear in any order). *)
type formula =
  | Ref_gate of string
  | Ref_basic of string
  | Ref_event of string (* gate or basic, disambiguated at resolution *)
  | F_and of formula list
  | F_or of formula list
  | F_atleast of int * formula list

let rec parse_formula el =
  match el.Xml.tag with
  | "gate" -> Ref_gate (Xml.attribute_exn el "name")
  | "basic-event" -> Ref_basic (Xml.attribute_exn el "name")
  | "event" | "house-event" -> Ref_event (Xml.attribute_exn el "name")
  | "and" -> F_and (List.map parse_formula (Xml.elements el))
  | "or" -> F_or (List.map parse_formula (Xml.elements el))
  | "atleast" | "vote" ->
    let min =
      match Xml.attribute el "min" with
      | Some v -> (
        match int_of_string_opt v with
        | Some k -> k
        | None -> error "bad atleast min %S" v)
      | None -> error "<%s> needs a min attribute" el.Xml.tag
    in
    F_atleast (min, List.map parse_formula (Xml.elements el))
  | other -> error "unsupported formula element <%s>" other

let parse_float_value el what =
  match Xml.find_opt el "float" with
  | Some f -> (
    match float_of_string_opt (Xml.attribute_exn f "value") with
    | Some v ->
      if (not (Float.is_finite v)) || v < 0.0 || v > 1.0 then
        error "basic event %S: probability %s is not in [0, 1]" what
          (string_of_float v);
      v
    | None -> error "bad float value in %s" what)
  | None -> 0.0

let of_xml root =
  if root.Xml.tag <> "opsa-mef" then
    error "expected <opsa-mef> as the root element, got <%s>" root.Xml.tag;
  let fault_tree =
    match Xml.find_opt root "define-fault-tree" with
    | Some ft -> ft
    | None -> error "no <define-fault-tree> in the document"
  in
  (* Collect definitions. *)
  let gate_defs : (string, formula) Hashtbl.t = Hashtbl.create 64 in
  let basic_defs : (string, float) Hashtbl.t = Hashtbl.create 64 in
  let define_basic el =
    let name = Xml.attribute_exn el "name" in
    if Hashtbl.mem basic_defs name then
      error "duplicate definition of basic event %S" name;
    Hashtbl.replace basic_defs name (parse_float_value el name)
  in
  List.iter
    (fun el ->
      match el.Xml.tag with
      | "define-gate" ->
        let name = Xml.attribute_exn el "name" in
        if Hashtbl.mem gate_defs name then
          error "duplicate definition of gate %S" name;
        (match Xml.elements el with
        | [ body ] -> Hashtbl.replace gate_defs name (parse_formula body)
        | [] -> error "gate %S has no formula" name
        | _ -> error "gate %S has more than one formula" name)
      | "define-basic-event" -> define_basic el
      | "define-house-event" -> define_basic el
      | _ -> ())
    (Xml.elements fault_tree);
  (match Xml.find_opt root "model-data" with
  | Some md ->
    List.iter
      (fun el ->
        if el.Xml.tag = "define-basic-event" || el.Xml.tag = "define-house-event"
        then define_basic el)
      (Xml.elements md)
  | None -> ());
  (* Build the tree: basics first (referenced ones without definitions get
     probability 0), then gates by recursive resolution with a visiting set
     for cycle detection. *)
  let builder = Fault_tree.Builder.create () in
  let basic_nodes : (string, Fault_tree.node) Hashtbl.t = Hashtbl.create 64 in
  let basic_node name =
    match Hashtbl.find_opt basic_nodes name with
    | Some n -> n
    | None ->
      let prob = try Hashtbl.find basic_defs name with Not_found -> 0.0 in
      let n = Fault_tree.Builder.basic builder ~prob name in
      Hashtbl.replace basic_nodes name n;
      n
  in
  let gate_nodes : (string, Fault_tree.node) Hashtbl.t = Hashtbl.create 64 in
  let visiting : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let fresh = ref 0 in
  let rec gate_node name =
    match Hashtbl.find_opt gate_nodes name with
    | Some n -> n
    | None ->
      if Hashtbl.mem visiting name then error "cyclic gate definition %S" name;
      Hashtbl.add visiting name ();
      let formula =
        match Hashtbl.find_opt gate_defs name with
        | Some f -> f
        | None -> error "undefined gate %S" name
      in
      let n = build_named name formula in
      Hashtbl.remove visiting name;
      Hashtbl.replace gate_nodes name n;
      n
  and build_named name formula =
    match formula with
    | F_and fs -> Fault_tree.Builder.gate builder name Fault_tree.And (operands fs)
    | F_or fs -> Fault_tree.Builder.gate builder name Fault_tree.Or (operands fs)
    | F_atleast (k, fs) ->
      Fault_tree.Builder.gate builder name (Fault_tree.Atleast k) (operands fs)
    | Ref_gate _ | Ref_basic _ | Ref_event _ ->
      (* A gate defined as a plain reference: wrap in a single-input OR so
         that the name exists as a gate. *)
      Fault_tree.Builder.gate builder name Fault_tree.Or [ operand formula ]
  and operands fs = List.map operand fs
  and operand = function
    | Ref_gate g -> gate_node g
    | Ref_basic b -> basic_node b
    | Ref_event name ->
      if Hashtbl.mem gate_defs name then gate_node name else basic_node name
    | (F_and _ | F_or _ | F_atleast _) as nested ->
      incr fresh;
      build_named (Printf.sprintf "_anon%d" !fresh) nested
  in
  let gate_names = Hashtbl.fold (fun name _ acc -> name :: acc) gate_defs [] in
  if gate_names = [] then error "the fault tree defines no gates";
  List.iter (fun name -> ignore (gate_node name)) (List.sort compare gate_names);
  (* Determine the top gate. *)
  let top_name =
    match Xml.attribute fault_tree "top" with
    | Some name ->
      if Hashtbl.mem gate_defs name then name else error "unknown top gate %S" name
    | None ->
      let referenced = Hashtbl.create 16 in
      let rec refs = function
        | Ref_gate g -> Hashtbl.replace referenced g ()
        | Ref_event g when Hashtbl.mem gate_defs g -> Hashtbl.replace referenced g ()
        | Ref_basic _ | Ref_event _ -> ()
        | F_and fs | F_or fs | F_atleast (_, fs) -> List.iter refs fs
      in
      Hashtbl.iter (fun _ f -> refs f) gate_defs;
      let roots =
        List.filter (fun name -> not (Hashtbl.mem referenced name)) gate_names
      in
      (match roots with
      | [ one ] -> one
      | [] -> error "no root gate (all gates are referenced)"
      | several ->
        error "ambiguous top gate (%s); add a top= attribute"
          (String.concat ", " (List.sort compare several)))
  in
  Fault_tree.Builder.build builder ~top:(gate_node top_name)

(* The tree builder's own validation (duplicate names shared between gates
   and basics, duplicate gate inputs, bad thresholds) raises
   [Invalid_argument] with messages that already name the element; surface
   them as parser errors. *)
let of_xml_wrapped root =
  try of_xml root with Invalid_argument m -> error "%s" m

let of_string s =
  match Xml.parse_string s with
  | root -> of_xml_wrapped root
  | exception Xml.Parse_error { line; message } -> error "line %d: %s" line message

let of_file path =
  match Xml.parse_file path with
  | root -> of_xml_wrapped root
  | exception Xml.Parse_error { line; message } ->
    error "%s, line %d: %s" path line message

let to_xml ?(name = "fault-tree") tree =
  let gate g =
    let kind, extra_attrs =
      match Fault_tree.gate_kind tree g with
      | Fault_tree.And -> ("and", [])
      | Fault_tree.Or -> ("or", [])
      | Fault_tree.Atleast k -> ("atleast", [ ("min", string_of_int k) ])
    in
    let operands =
      Array.to_list
        (Array.map
           (function
             | Fault_tree.B b ->
               Xml.Element
                 {
                   Xml.tag = "basic-event";
                   attributes = [ ("name", Fault_tree.basic_name tree b) ];
                   children = [];
                 }
             | Fault_tree.G g' ->
               Xml.Element
                 {
                   Xml.tag = "gate";
                   attributes = [ ("name", Fault_tree.gate_name tree g') ];
                   children = [];
                 })
           (Fault_tree.gate_inputs tree g))
    in
    Xml.Element
      {
        Xml.tag = "define-gate";
        attributes = [ ("name", Fault_tree.gate_name tree g) ];
        children =
          [
            Xml.Element
              { Xml.tag = kind; attributes = extra_attrs; children = operands };
          ];
      }
  in
  let gates = List.init (Fault_tree.n_gates tree) gate in
  let basics =
    List.init (Fault_tree.n_basics tree) (fun b ->
        Xml.Element
          {
            Xml.tag = "define-basic-event";
            attributes = [ ("name", Fault_tree.basic_name tree b) ];
            children =
              [
                Xml.Element
                  {
                    Xml.tag = "float";
                    attributes =
                      [ ("value", Printf.sprintf "%.17g" (Fault_tree.prob tree b)) ];
                    children = [];
                  };
              ];
          })
  in
  {
    Xml.tag = "opsa-mef";
    attributes = [];
    children =
      [
        Xml.Element
          {
            Xml.tag = "define-fault-tree";
            attributes =
              [
                ("name", name);
                ("top", Fault_tree.gate_name tree (Fault_tree.top tree));
              ];
            children = gates;
          };
        Xml.Element
          { Xml.tag = "model-data"; attributes = []; children = basics };
      ];
  }

let to_string ?name tree =
  "<?xml version=\"1.0\"?>\n" ^ Xml.to_string (to_xml ?name tree)

let to_file ?name path tree =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?name tree))

exception Error of string

let error fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

let find_field name fields =
  List.find_map
    (function
      | Sexp.List (Sexp.Atom key :: rest) when key = name -> Some rest
      | Sexp.Atom key when key = name -> Some []
      | _ -> None)
    fields

let field_float name fields =
  match find_field name fields with
  | Some [ v ] -> Some (Sexp.float_atom v)
  | Some _ -> error "field %s expects one value" name
  | None -> None

let field_int name fields =
  match find_field name fields with
  | Some [ v ] -> Some (Sexp.int_atom v)
  | Some _ -> error "field %s expects one value" name
  | None -> None

let require what = function
  | Some v -> v
  | None -> error "missing field %s" what

(* Validate numeric fields here, where we still know which element they
   belong to — the underlying constructors reject bad values too, but their
   messages cannot name the event. *)
let check_rate ~name what r =
  Option.iter
    (fun r ->
      if (not (Float.is_finite r)) || r < 0.0 then
        error "dynamic event %S: %s must be a finite non-negative rate, got %s"
          name what (string_of_float r))
    r;
  r

let check_prob ~name what p =
  Option.iter
    (fun p ->
      if (not (Float.is_finite p)) || p < 0.0 || p > 1.0 then
        error "dynamic event %S: %s %s is not a probability in [0, 1]" name
          what (string_of_float p))
    p;
  p

let parse_dbe ~name = function
  | Sexp.List (Sexp.Atom "exponential" :: fields) ->
    Dbe.exponential
      ~lambda:
        (require "lambda"
           (check_rate ~name "lambda" (field_float "lambda" fields)))
      ?mu:(check_rate ~name "mu" (field_float "mu" fields))
      ()
  | Sexp.List (Sexp.Atom "erlang" :: fields) ->
    Dbe.erlang
      ~phases:(require "phases" (field_int "phases" fields))
      ~lambda:
        (require "lambda"
           (check_rate ~name "lambda" (field_float "lambda" fields)))
      ?mu:(check_rate ~name "mu" (field_float "mu" fields))
      ()
  | Sexp.List (Sexp.Atom "triggered-erlang" :: fields) ->
    Dbe.triggered_erlang
      ~phases:(require "phases" (field_int "phases" fields))
      ~lambda:
        (require "lambda"
           (check_rate ~name "lambda" (field_float "lambda" fields)))
      ?mu:(check_rate ~name "mu" (field_float "mu" fields))
      ?passive_factor:
        (check_rate ~name "passive factor" (field_float "passive" fields))
      ?repair_when_off:
        (match find_field "repair-when-off" fields with
        | Some _ -> Some true
        | None -> None)
      ()
  | Sexp.List (Sexp.Atom "ctmc" :: fields) ->
    let n_states = require "states" (field_int "states" fields) in
    let init =
      match find_field "init" fields with
      | Some entries ->
        List.map
          (function
            | Sexp.List [ s; p ] ->
              let p = Sexp.float_atom p in
              ignore (check_prob ~name "initial mass" (Some p));
              (Sexp.int_atom s, p)
            | _ -> error "init entries must be (STATE PROB)")
          entries
      | None -> error "missing field init"
    in
    let transitions =
      match find_field "transitions" fields with
      | Some entries ->
        List.map
          (function
            | Sexp.List [ s; d; r ] ->
              let r = Sexp.float_atom r in
              ignore (check_rate ~name "transition rate" (Some r));
              (Sexp.int_atom s, Sexp.int_atom d, r)
            | _ -> error "transitions entries must be (SRC DST RATE)")
          entries
      | None -> []
    in
    let failed =
      match find_field "failed" fields with
      | Some entries -> List.map Sexp.int_atom entries
      | None -> error "missing field failed"
    in
    let switch =
      match find_field "switch" fields with
      | None -> None
      | Some sw_fields ->
        let modes =
          match find_field "modes" sw_fields with
          | Some entries ->
            Array.of_list
              (List.map
                 (fun e ->
                   match Sexp.atom e with
                   | "on" -> Dbe.On
                   | "off" -> Dbe.Off
                   | other -> error "bad mode %S" other)
                 entries)
          | None -> error "switch needs (modes ...)"
        in
        let partner =
          match find_field "partner" sw_fields with
          | Some entries -> Array.of_list (List.map Sexp.int_atom entries)
          | None -> error "switch needs (partner ...)"
        in
        Some (modes, partner)
    in
    Dbe.make ~n_states ~init ~transitions ~failed ?switch ()
  | other -> error "unknown dynamic event spec %s" (Sexp.to_string other)

let parse_kind = function
  | Sexp.Atom "and" -> Fault_tree.And
  | Sexp.Atom "or" -> Fault_tree.Or
  | Sexp.List [ Sexp.Atom "atleast"; k ] -> Fault_tree.Atleast (Sexp.int_atom k)
  | other -> error "unknown gate kind %s" (Sexp.to_string other)

let of_forms forms =
  let builder = Fault_tree.Builder.create () in
  let dynamic = ref [] in
  let triggers = ref [] in
  let top = ref None in
  let node_of name =
    match Fault_tree.Builder.node_of_name builder name with
    | Some n -> n
    | None -> error "unknown node %S (define before use)" name
  in
  List.iter
    (fun form ->
      match form with
      | Sexp.List [ Sexp.Atom "basic"; name; prob ] ->
        let name = Sexp.atom name in
        let prob = Sexp.float_atom prob in
        if (not (Float.is_finite prob)) || prob < 0.0 || prob > 1.0 then
          error "basic event %S: probability %s is not in [0, 1]" name
            (string_of_float prob);
        let _ = Fault_tree.Builder.basic builder ~prob name in
        ()
      | Sexp.List [ Sexp.Atom "dynamic"; name; spec ] ->
        let name = Sexp.atom name in
        let _ = Fault_tree.Builder.basic builder ~prob:0.0 name in
        dynamic := (name, parse_dbe ~name spec) :: !dynamic
      | Sexp.List (Sexp.Atom "gate" :: name :: kind :: inputs) ->
        let inputs = List.map (fun i -> node_of (Sexp.atom i)) inputs in
        let _ =
          Fault_tree.Builder.gate builder (Sexp.atom name) (parse_kind kind)
            inputs
        in
        ()
      | Sexp.List [ Sexp.Atom "trigger"; g; b ] ->
        triggers := (Sexp.atom g, Sexp.atom b) :: !triggers
      | Sexp.List [ Sexp.Atom "top"; name ] -> top := Some (Sexp.atom name)
      | other -> error "unknown form %s" (Sexp.to_string other))
    forms;
  let top_name = match !top with Some t -> t | None -> error "missing (top ...)" in
  let tree = Fault_tree.Builder.build builder ~top:(node_of top_name) in
  try Sdft.make tree ~dynamic:(List.rev !dynamic) ~triggers:(List.rev !triggers)
  with Invalid_argument m -> error "%s" m

(* Accessor helpers (Sexp.float_atom etc.) report through Parse_error as
   well; translate everything into this module's Error. [Invalid_argument]
   covers the model-builder checks (duplicate names, bad gate inputs, Dbe
   and Ctmc structural validation) whose messages already name the
   offending element. *)
let of_forms_wrapped forms =
  try of_forms forms with
  | Sexp.Parse_error { message; _ } -> error "%s" message
  | Invalid_argument m -> error "%s" m

let of_string s =
  match Sexp.parse_string s with
  | forms -> of_forms_wrapped forms
  | exception Sexp.Parse_error { line; message } ->
    error "line %d: %s" line message

let of_file path =
  match Sexp.parse_file path with
  | forms -> of_forms_wrapped forms
  | exception Sexp.Parse_error { line; message } ->
    error "%s, line %d: %s" path line message

let dbe_to_sexp d =
  let n = Dbe.n_states d in
  let chain = Dbe.chain d in
  let transitions = ref [] in
  Ctmc.iter_transitions chain (fun s dst r ->
      transitions :=
        Sexp.List
          [
            Sexp.Atom (string_of_int s);
            Sexp.Atom (string_of_int dst);
            Sexp.Atom (Printf.sprintf "%.17g" r);
          ]
        :: !transitions);
  let init =
    List.map
      (fun (s, p) ->
        Sexp.List
          [ Sexp.Atom (string_of_int s); Sexp.Atom (Printf.sprintf "%.17g" p) ])
      (List.filter (fun (_, p) -> p > 0.0) (Dbe.init d))
  in
  let failed =
    List.filter_map
      (fun s -> if Dbe.is_failed d s then Some (Sexp.Atom (string_of_int s)) else None)
      (List.init n Fun.id)
  in
  let base =
    [
      Sexp.List [ Sexp.Atom "states"; Sexp.Atom (string_of_int n) ];
      Sexp.List (Sexp.Atom "init" :: init);
      Sexp.List (Sexp.Atom "transitions" :: List.rev !transitions);
      Sexp.List (Sexp.Atom "failed" :: failed);
    ]
  in
  let switch =
    if not (Dbe.is_triggered_model d) then []
    else begin
      let modes =
        List.init n (fun s ->
            Sexp.Atom (match Dbe.mode_of d s with Dbe.On -> "on" | Dbe.Off -> "off"))
      in
      let partner =
        List.init n (fun s ->
            let p =
              match Dbe.mode_of d s with
              | Dbe.On -> Dbe.switch_off d s
              | Dbe.Off -> Dbe.switch_on d s
            in
            Sexp.Atom (string_of_int p))
      in
      [
        Sexp.List
          [
            Sexp.Atom "switch";
            Sexp.List (Sexp.Atom "modes" :: modes);
            Sexp.List (Sexp.Atom "partner" :: partner);
          ];
      ]
    end
  in
  Sexp.List (Sexp.Atom "ctmc" :: (base @ switch))

let to_string sd =
  let tree = Sdft.tree sd in
  let buf = Buffer.create 1024 in
  let emit s = Buffer.add_string buf (Sexp.to_string s ^ "\n") in
  for b = 0 to Fault_tree.n_basics tree - 1 do
    let name = Sexp.Atom (Fault_tree.basic_name tree b) in
    if Sdft.is_dynamic sd b then
      emit (Sexp.List [ Sexp.Atom "dynamic"; name; dbe_to_sexp (Sdft.dbe sd b) ])
    else
      emit
        (Sexp.List
           [
             Sexp.Atom "basic";
             name;
             Sexp.Atom (Printf.sprintf "%.17g" (Fault_tree.prob tree b));
           ])
  done;
  for g = 0 to Fault_tree.n_gates tree - 1 do
    let kind =
      match Fault_tree.gate_kind tree g with
      | Fault_tree.And -> Sexp.Atom "and"
      | Fault_tree.Or -> Sexp.Atom "or"
      | Fault_tree.Atleast k ->
        Sexp.List [ Sexp.Atom "atleast"; Sexp.Atom (string_of_int k) ]
    in
    let inputs =
      Array.to_list
        (Array.map
           (function
             | Fault_tree.B b -> Sexp.Atom (Fault_tree.basic_name tree b)
             | Fault_tree.G g' -> Sexp.Atom (Fault_tree.gate_name tree g'))
           (Fault_tree.gate_inputs tree g))
    in
    emit
      (Sexp.List
         (Sexp.Atom "gate" :: Sexp.Atom (Fault_tree.gate_name tree g) :: kind :: inputs))
  done;
  List.iter
    (fun (g, b) ->
      emit
        (Sexp.List
           [
             Sexp.Atom "trigger";
             Sexp.Atom (Fault_tree.gate_name tree g);
             Sexp.Atom (Fault_tree.basic_name tree b);
           ]))
    (Sdft.trigger_edges sd);
  emit
    (Sexp.List
       [ Sexp.Atom "top"; Sexp.Atom (Fault_tree.gate_name tree (Fault_tree.top tree)) ]);
  Buffer.contents buf

let to_file path sd =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string sd))
